#include "gpusim/profiler.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <ostream>

namespace et::gpusim {

DeviceReport profile(const Device& dev) {
  DeviceReport rep;
  const std::size_t txn = dev.spec().transaction_bytes;

  double weighted_sm = 0.0;
  double weighted_ipc = 0.0;
  double weighted_bw = 0.0;
  std::uint64_t total_bytes = 0;

  for (const auto& k : dev.history()) {
    KernelReport kr;
    kr.name = k.name;
    kr.time_us = k.time_us;
    kr.gld_transactions = k.gld_transactions(txn);
    kr.gst_transactions = k.gst_transactions(txn);
    kr.achieved_gbps = k.achieved_gbps();
    kr.arithmetic_intensity = k.arithmetic_intensity();
    kr.memory_bound = kr.arithmetic_intensity < kMemoryBoundAiThreshold;
    kr.sm_efficiency = k.sm_efficiency;
    kr.ipc = k.ipc;

    rep.total_time_us += kr.time_us;
    rep.gld_transactions += kr.gld_transactions;
    rep.gst_transactions += kr.gst_transactions;
    weighted_sm += kr.sm_efficiency * kr.time_us;
    weighted_ipc += kr.ipc * kr.time_us;
    weighted_bw +=
        kr.achieved_gbps * static_cast<double>(k.total_bytes());
    total_bytes += k.total_bytes();

    rep.kernels.push_back(std::move(kr));
  }

  if (rep.total_time_us > 0.0) {
    rep.avg_sm_efficiency = weighted_sm / rep.total_time_us;
    rep.avg_ipc = weighted_ipc / rep.total_time_us;
  }
  if (total_bytes > 0) {
    rep.avg_achieved_gbps = weighted_bw / static_cast<double>(total_bytes);
  }

  // Per-slot attribution: only meaningful once something was slot-scoped.
  std::map<int, SlotReport> by_slot;
  bool any_slot = false;
  for (const auto& k : dev.history()) {
    if (k.slot != kNoSlot) any_slot = true;
    auto& sr = by_slot[k.slot];
    sr.slot = k.slot;
    ++sr.launches;
    sr.time_us += k.time_us;
    sr.load_bytes += k.global_load_bytes;
    sr.store_bytes += k.global_store_bytes;
  }
  for (const auto& f : dev.fallback_log()) {
    if (f.slot != kNoSlot) any_slot = true;
    auto& sr = by_slot[f.slot];
    sr.slot = f.slot;
    ++sr.fallbacks;
  }
  if (any_slot) {
    for (auto& [slot, sr] : by_slot) rep.slots.push_back(sr);
  }

  rep.fallbacks = dev.fallback_log();
  return rep;
}

void print_report(std::ostream& os, const DeviceReport& report) {
  os << std::left << std::setw(38) << "kernel" << std::right << std::setw(10)
     << "time_us" << std::setw(12) << "gld_txn" << std::setw(12) << "gst_txn"
     << std::setw(10) << "GB/s" << std::setw(8) << "AI" << std::setw(7)
     << "bound" << std::setw(8) << "sm_eff" << std::setw(7) << "ipc" << '\n';
  for (const auto& k : report.kernels) {
    os << std::left << std::setw(38) << k.name << std::right << std::fixed
       << std::setprecision(2) << std::setw(10) << k.time_us << std::setw(12)
       << k.gld_transactions << std::setw(12) << k.gst_transactions
       << std::setw(10) << std::setprecision(1) << k.achieved_gbps
       << std::setw(8) << k.arithmetic_intensity << std::setw(7)
       << (k.memory_bound ? "mem" : "comp") << std::setw(8)
       << std::setprecision(2) << k.sm_efficiency << std::setw(7) << k.ipc
       << '\n';
  }
  os << std::left << std::setw(38) << "TOTAL" << std::right << std::fixed
     << std::setprecision(2) << std::setw(10) << report.total_time_us
     << std::setw(12) << report.gld_transactions << std::setw(12)
     << report.gst_transactions << std::setw(10) << std::setprecision(1)
     << report.avg_achieved_gbps << std::setw(8) << "" << std::setw(7) << ""
     << std::setw(8) << std::setprecision(2) << report.avg_sm_efficiency
     << std::setw(7) << report.avg_ipc << '\n';
  if (!report.slots.empty()) {
    os << "\nper-slot attribution:\n";
    for (const auto& s : report.slots) {
      os << "  ";
      if (s.slot == kNoSlot) {
        os << std::left << std::setw(10) << "shared";
      } else {
        os << "slot " << std::left << std::setw(5) << s.slot;
      }
      os << std::right << std::fixed << std::setprecision(2) << std::setw(10)
         << s.time_us << " us" << std::setw(8) << s.launches << " launches"
         << std::setw(14) << (s.load_bytes + s.store_bytes) << " B";
      if (s.fallbacks > 0) os << "  (" << s.fallbacks << " fallbacks)";
      os << "\n";
    }
  }
  if (!report.fallbacks.empty()) {
    os << "\nfallbacks (" << report.fallbacks.size() << "):\n";
    for (const auto& f : report.fallbacks) {
      os << "  " << f.from_impl << " -> " << f.to_impl << "  (kernel '"
         << f.kernel << "', cause: " << f.cause;
      if (f.slot != kNoSlot) os << ", slot " << f.slot;
      os << ")\n";
    }
  }
}

}  // namespace et::gpusim
