// Chrome-trace (chrome://tracing / Perfetto) export of a Device's launch
// history: each kernel becomes a complete event on a per-stream track,
// with the counters attached as arguments. Drop the JSON into Perfetto to
// see the modeled timeline the way one would a real nvprof capture.
#pragma once

#include <iosfwd>
#include <string>

#include "gpusim/device.hpp"

namespace et::gpusim {

/// Write the launch history as a Chrome trace-event JSON array. Kernels
/// are laid out back to back on one "stream 0" track starting at t=0
/// (the simulator is sequential, like a single CUDA stream).
void write_chrome_trace(std::ostream& os, const Device& dev,
                        const std::string& process_name = "et-gpusim");

/// File-path convenience wrapper; throws std::runtime_error on failure.
void write_chrome_trace(const std::string& path, const Device& dev,
                        const std::string& process_name = "et-gpusim");

}  // namespace et::gpusim
