// Binary serialization of deployed encoder weights — the artifact a
// production user ships after the prune/retrain pipeline. All five weight
// formats round-trip, so a model pruned on one machine loads for
// inference elsewhere without re-deriving masks.
//
// Format: little-endian, "ETW1" magic + version, then a tagged stream of
// sections. Not designed for cross-endian portability (like most ML
// checkpoint formats); integrity is guarded by the magic, version and
// per-section element counts.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/decoder.hpp"
#include "nn/encoder.hpp"

namespace et::nn {

/// Serialize one encoder layer's weights.
void save_encoder_weights(std::ostream& os, const EncoderWeights& w);
[[nodiscard]] EncoderWeights load_encoder_weights(std::istream& is);

/// Serialize a whole stack (layer count + layers).
void save_encoder_stack(std::ostream& os,
                        const std::vector<EncoderWeights>& layers);
[[nodiscard]] std::vector<EncoderWeights> load_encoder_stack(std::istream& is);

/// Decoder stacks (self-attn + cross-attn + MLP per layer).
void save_decoder_stack(std::ostream& os,
                        const std::vector<DecoderWeights>& layers);
[[nodiscard]] std::vector<DecoderWeights> load_decoder_stack(std::istream& is);

/// File-path convenience wrappers; throw std::runtime_error on IO failure.
void save_encoder_stack(const std::string& path,
                        const std::vector<EncoderWeights>& layers);
[[nodiscard]] std::vector<EncoderWeights> load_encoder_stack(
    const std::string& path);

}  // namespace et::nn
