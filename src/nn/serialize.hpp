// Binary serialization of deployed encoder weights — the artifact a
// production user ships after the prune/retrain pipeline. All five weight
// formats round-trip, so a model pruned on one machine loads for
// inference elsewhere without re-deriving masks.
//
// Format (v2): little-endian, "ETW2" magic + version, then named sections
// ("layer0/attention", "layer0/ffn", ...), each carrying its payload size
// and a CRC32 of the payload. A truncated or bit-flipped checkpoint is
// rejected with an error naming the bad section instead of loading
// garbage weights. Legacy "ETW1"/"ETD1" streams (magic + element counts,
// no checksums) still load, with a warning. Not designed for cross-endian
// portability (like most ML checkpoint formats).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/decoder.hpp"
#include "nn/encoder.hpp"

namespace et::nn {

/// Serialize one encoder layer's weights as checksummed sections
/// ("attention", "ffn", "layernorm") without a file header.
void save_encoder_weights(std::ostream& os, const EncoderWeights& w);
[[nodiscard]] EncoderWeights load_encoder_weights(std::istream& is);

/// Serialize a whole stack (magic + version + layer count + sections).
void save_encoder_stack(std::ostream& os,
                        const std::vector<EncoderWeights>& layers);
[[nodiscard]] std::vector<EncoderWeights> load_encoder_stack(std::istream& is);

/// Decoder stacks (self-attn + cross-attn + MLP per layer).
void save_decoder_stack(std::ostream& os,
                        const std::vector<DecoderWeights>& layers);
[[nodiscard]] std::vector<DecoderWeights> load_decoder_stack(std::istream& is);

/// Legacy v1 writers (no per-section checksums). Retained so compat tests
/// and older tooling can still produce ETW1/ETD1 streams; new code should
/// use the checksummed save_*_stack above.
void save_encoder_stack_v1(std::ostream& os,
                           const std::vector<EncoderWeights>& layers);
void save_decoder_stack_v1(std::ostream& os,
                           const std::vector<DecoderWeights>& layers);

/// File-path convenience wrappers; throw std::runtime_error on IO failure.
void save_encoder_stack(const std::string& path,
                        const std::vector<EncoderWeights>& layers);
[[nodiscard]] std::vector<EncoderWeights> load_encoder_stack(
    const std::string& path);

}  // namespace et::nn
