#include "nn/reference.hpp"

#include <cmath>
#include <limits>
#include <vector>

namespace et::nn {

namespace {

/// y = x · wᵀ in double.
tensor::MatrixD gemm_nt_d(const tensor::MatrixD& x, const tensor::MatrixD& w) {
  tensor::MatrixD y(x.rows(), w.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < w.rows(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < x.cols(); ++k) acc += x(i, k) * w(j, k);
      y(i, j) = acc;
    }
  }
  return y;
}

tensor::MatrixD widen(const tensor::MatrixF& m) {
  tensor::MatrixD d(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.size(); ++i) {
    d.flat()[i] = static_cast<double>(m.flat()[i]);
  }
  return d;
}

tensor::MatrixF narrow(const tensor::MatrixD& m) {
  tensor::MatrixF f(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.size(); ++i) {
    f.flat()[i] = static_cast<float>(m.flat()[i]);
  }
  return f;
}

tensor::MatrixD attention_d(const tensor::MatrixD& x,
                            const tensor::MatrixD& kv_source,
                            const core::AttentionWeights& w,
                            const core::AttentionConfig& cfg) {
  const std::size_t s = x.rows();
  const std::size_t kv = kv_source.rows();
  const std::size_t d = cfg.d_model;
  const std::size_t dk = cfg.d_k();
  const double scale = 1.0 / std::sqrt(static_cast<double>(dk));

  const tensor::MatrixD wq = widen(sparse::to_dense(w.wq));
  const tensor::MatrixD wk = widen(sparse::to_dense(w.wk));
  const tensor::MatrixD wv = widen(sparse::to_dense(w.wv));
  const tensor::MatrixD wo = widen(sparse::to_dense(w.wo));

  const tensor::MatrixD q = gemm_nt_d(x, wq);
  const tensor::MatrixD k = gemm_nt_d(kv_source, wk);
  const tensor::MatrixD v = gemm_nt_d(kv_source, wv);

  tensor::MatrixD z(s, d);
  std::vector<double> scores(kv);
  for (std::size_t h = 0; h < cfg.num_heads; ++h) {
    for (std::size_t i = 0; i < s; ++i) {
      for (std::size_t j = 0; j < kv; ++j) {
        double acc = 0.0;
        for (std::size_t c = 0; c < dk; ++c) {
          acc += q(i, h * dk + c) * k(j, h * dk + c);
        }
        scores[j] = acc * scale;
      }
      if (cfg.causal_mask && kv == s) {
        for (std::size_t j = i + 1; j < kv; ++j) {
          scores[j] = -std::numeric_limits<double>::infinity();
        }
      }
      if (cfg.valid_len > 0 && cfg.valid_len < kv) {
        for (std::size_t j = cfg.valid_len; j < kv; ++j) {
          scores[j] = -std::numeric_limits<double>::infinity();
        }
      }
      double mx = -std::numeric_limits<double>::infinity();
      for (double v2 : scores) mx = std::max(mx, v2);
      double sum = 0.0;
      for (auto& v2 : scores) {
        v2 = std::exp(v2 - mx);
        sum += v2;
      }
      for (auto& v2 : scores) v2 /= sum;
      for (std::size_t c = 0; c < dk; ++c) {
        double acc = 0.0;
        for (std::size_t j = 0; j < kv; ++j) {
          acc += scores[j] * v(j, h * dk + c);
        }
        z(i, h * dk + c) = acc;
      }
    }
  }
  return gemm_nt_d(z, wo);
}

void layernorm_d(tensor::MatrixD& m, const std::vector<float>& gamma,
                 const std::vector<float>& beta) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double mean = 0.0;
    for (std::size_t c = 0; c < m.cols(); ++c) mean += m(r, c);
    mean /= static_cast<double>(m.cols());
    double var = 0.0;
    for (std::size_t c = 0; c < m.cols(); ++c) {
      const double d = m(r, c) - mean;
      var += d * d;
    }
    var /= static_cast<double>(m.cols());
    const double inv = 1.0 / std::sqrt(var + 1e-5);
    for (std::size_t c = 0; c < m.cols(); ++c) {
      m(r, c) = (m(r, c) - mean) * inv * gamma[c] + beta[c];
    }
  }
}

}  // namespace

tensor::MatrixF reference_attention(const tensor::MatrixF& x,
                                    const core::AttentionWeights& w,
                                    const core::AttentionConfig& cfg) {
  const tensor::MatrixD xd = widen(x);
  return narrow(attention_d(xd, xd, w, cfg));
}

tensor::MatrixF reference_cross_attention(const tensor::MatrixF& x,
                                          const tensor::MatrixF& memory,
                                          const core::AttentionWeights& w,
                                          const core::AttentionConfig& cfg) {
  return narrow(attention_d(widen(x), widen(memory), w, cfg));
}

tensor::MatrixF reference_encoder(const tensor::MatrixF& x,
                                  const EncoderWeights& w,
                                  const core::AttentionConfig& cfg) {
  const tensor::MatrixD xd = widen(x);
  tensor::MatrixD attn = attention_d(xd, xd, w.attn, cfg);
  for (std::size_t i = 0; i < attn.size(); ++i) attn.flat()[i] += xd.flat()[i];
  layernorm_d(attn, w.ln1_gamma, w.ln1_beta);

  const tensor::MatrixD ff1 = widen(sparse::to_dense(w.w_ff1));
  const tensor::MatrixD ff2 = widen(sparse::to_dense(w.w_ff2));
  tensor::MatrixD h = gemm_nt_d(attn, ff1);
  constexpr double kSqrt2OverPi = 0.7978845608028654;
  for (std::size_t r = 0; r < h.rows(); ++r) {
    for (std::size_t c = 0; c < h.cols(); ++c) {
      const double v = h(r, c) + static_cast<double>(w.b_ff1[c]);
      const double inner = kSqrt2OverPi * (v + 0.044715 * v * v * v);
      h(r, c) = 0.5 * v * (1.0 + std::tanh(inner));
    }
  }
  tensor::MatrixD y = gemm_nt_d(h, ff2);
  for (std::size_t r = 0; r < y.rows(); ++r) {
    for (std::size_t c = 0; c < y.cols(); ++c) {
      y(r, c) += static_cast<double>(w.b_ff2[c]) + attn(r, c);
    }
  }
  layernorm_d(y, w.ln2_gamma, w.ln2_beta);
  return narrow(y);
}

}  // namespace et::nn
