// nn::WeightFormat — the unified weight-layout/precision descriptor.
//
// Before this header, the layout knob was a string: Model::weight_layout()
// returned "dense" / "pruned" / "precomputed" string_views that et_cli,
// bench/ablation_serving and the tests compared by value, and INT8 had no
// seat at the table. The descriptor replaces that plumbing with one enum
// reported by Model::weight_layout(), consumed by the scheduler's fused
// tick, echoed by et_cli --json, and round-tripped through
// to_string/from_string exactly as PR 8 established for operator
// selection (core::AttentionImpl).
#pragma once

#include <optional>
#include <string_view>

namespace et::nn {

/// How the decode path runs a model's weights:
///   kDense       — every attention weight a plain FP matrix;
///   kPruned      — ≥1 attention weight in a sparse format (§4), no fold;
///   kPrecomputed — the pre-computed W_VO fold (§3.1) on ≥1 layer;
///   kInt8        — per-channel INT8 GEMMs over the weights' dense
///                  materialization (pruned zeros quantize to exact
///                  zeros, and the W_VO fold quantizes folded — INT8
///                  composes with the other three, docs/quantization.md).
enum class WeightFormat { kDense, kPrecomputed, kPruned, kInt8 };

[[nodiscard]] constexpr std::string_view to_string(WeightFormat f) noexcept {
  switch (f) {
    case WeightFormat::kDense: return "dense";
    case WeightFormat::kPrecomputed: return "precomputed";
    case WeightFormat::kPruned: return "pruned";
    case WeightFormat::kInt8: return "int8";
  }
  return "?";
}

/// The single inverse of to_string (et_cli --weights, bench flags, config
/// values). Defined by round trip over the enumerators, so a new format
/// is parseable the moment to_string knows it.
[[nodiscard]] constexpr std::optional<WeightFormat> from_string(
    std::string_view name) noexcept {
  constexpr WeightFormat kAll[] = {WeightFormat::kDense,
                                   WeightFormat::kPrecomputed,
                                   WeightFormat::kPruned, WeightFormat::kInt8};
  for (WeightFormat f : kAll) {
    if (to_string(f) == name) return f;
  }
  return std::nullopt;
}

}  // namespace et::nn
