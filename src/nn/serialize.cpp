#include "nn/serialize.hpp"

#include <array>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace et::nn {

namespace {

constexpr std::uint32_t kMagicV1 = 0x31575445;     // "ETW1" (legacy)
constexpr std::uint32_t kMagicV2 = 0x32575445;     // "ETW2" (checksummed)
constexpr std::uint32_t kDecMagicV1 = 0x31445445;  // "ETD1" (legacy)
constexpr std::uint32_t kDecMagicV2 = 0x32445445;  // "ETD2" (checksummed)
constexpr std::uint32_t kVersion1 = 1;
constexpr std::uint32_t kVersion2 = 2;

/// A tampered layer-count field must not become a giant reserve().
constexpr std::uint64_t kMaxLayers = 1ull << 16;

enum class Tag : std::uint32_t {
  kDense = 1,
  kRow = 2,
  kColumn = 3,
  kTile = 4,
  kIrregular = 5,
};

// ------------------------------------------------------------- CRC32 ----

/// CRC-32 (IEEE 802.3), table-driven; the same polynomial gzip and PNG
/// use, so a checkpoint's section CRCs can be cross-checked externally.
std::uint32_t crc32(const char* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ static_cast<unsigned char>(data[i])) & 0xffu] ^
          (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

// ------------------------------------------------------- raw helpers ----

void put_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void put_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint32_t get_u32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("et::nn::load: truncated stream (u32)");
  return v;
}

std::uint64_t get_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("et::nn::load: truncated stream (u64)");
  return v;
}

void put_floats(std::ostream& os, const float* data, std::size_t n) {
  put_u64(os, n);
  os.write(reinterpret_cast<const char*>(data),
           static_cast<std::streamsize>(n * sizeof(float)));
}

std::vector<float> get_floats(std::istream& is) {
  const std::uint64_t n = get_u64(is);
  std::vector<float> out(n);
  is.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(n * sizeof(float)));
  if (!is) throw std::runtime_error("et::nn::load: truncated float block");
  return out;
}

void put_u32s(std::ostream& os, const std::vector<std::uint32_t>& v) {
  put_u64(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(std::uint32_t)));
}

std::vector<std::uint32_t> get_u32s(std::istream& is) {
  const std::uint64_t n = get_u64(is);
  std::vector<std::uint32_t> out(n);
  is.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(n * sizeof(std::uint32_t)));
  if (!is) throw std::runtime_error("et::nn::load: truncated index block");
  return out;
}

void put_matrix(std::ostream& os, const tensor::MatrixF& m) {
  put_u64(os, m.rows());
  put_u64(os, m.cols());
  put_floats(os, m.data(), m.size());
}

tensor::MatrixF get_matrix(std::istream& is) {
  const std::uint64_t rows = get_u64(is);
  const std::uint64_t cols = get_u64(is);
  const auto flat = get_floats(is);
  if (flat.size() != rows * cols) {
    throw std::runtime_error("et::nn::load: matrix size mismatch");
  }
  tensor::MatrixF m(rows, cols);
  std::copy(flat.begin(), flat.end(), m.data());
  return m;
}

// ---------------------------------------------------------- sections ----
// A section is one named, independently-checksummed unit of the stream:
//   u32 name length, name bytes, u64 payload size, u32 CRC32, payload.
// Every load-side failure mode — truncation, a flipped byte anywhere in
// header or payload, a wrong layer count — surfaces as an exception that
// names the section, so a corrupted checkpoint points at *what* is bad.

void write_section(std::ostream& os, const std::string& name,
                   const std::string& payload) {
  put_u32(os, static_cast<std::uint32_t>(name.size()));
  os.write(name.data(), static_cast<std::streamsize>(name.size()));
  put_u64(os, payload.size());
  put_u32(os, crc32(payload.data(), payload.size()));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

[[noreturn]] void section_error(const std::string& section,
                                const std::string& what) {
  throw std::runtime_error("et::nn::load: checkpoint section '" + section +
                           "': " + what);
}

std::string read_section(std::istream& is, const std::string& expected) {
  std::uint32_t name_len = 0;
  is.read(reinterpret_cast<char*>(&name_len), sizeof name_len);
  if (!is) section_error(expected, "truncated stream (section header)");
  // A corrupted length would otherwise turn into a huge allocation.
  if (name_len != expected.size()) {
    section_error(expected, "unexpected section name (corrupted header)");
  }
  std::string name(name_len, '\0');
  is.read(name.data(), name_len);
  if (!is) section_error(expected, "truncated stream (section name)");
  if (name != expected) {
    section_error(expected, "found section '" + name + "' instead");
  }
  std::uint64_t size = 0;
  is.read(reinterpret_cast<char*>(&size), sizeof size);
  std::uint32_t stored_crc = 0;
  is.read(reinterpret_cast<char*>(&stored_crc), sizeof stored_crc);
  if (!is) section_error(expected, "truncated stream (section header)");
  // A flipped byte in the size field must not become a huge allocation.
  constexpr std::uint64_t kMaxSectionBytes = 1ull << 32;
  if (size > kMaxSectionBytes) {
    section_error(expected, "implausible section size (corrupted header)");
  }
  std::string payload(size, '\0');
  is.read(payload.data(), static_cast<std::streamsize>(size));
  if (!is || static_cast<std::uint64_t>(is.gcount()) != size) {
    section_error(expected, "truncated stream (payload)");
  }
  if (crc32(payload.data(), payload.size()) != stored_crc) {
    section_error(expected, "CRC32 mismatch (checkpoint corrupted)");
  }
  return payload;
}

/// Serialize through `fill` into a buffered payload, then emit it as a
/// checksummed section.
template <typename Fn>
void put_section(std::ostream& os, const std::string& name, Fn&& fill) {
  std::ostringstream payload;
  fill(payload);
  write_section(os, name, payload.str());
}

/// Read a section and parse its payload through `parse`. A short payload
/// (which only a corrupted-but-CRC-colliding stream could produce) still
/// fails inside `parse` with the plain truncation errors.
template <typename Fn>
auto get_section(std::istream& is, const std::string& name, Fn&& parse) {
  std::istringstream payload(read_section(is, name));
  return parse(payload);
}

// ----------------------------------------------------- weight formats ----

void put_weight(std::ostream& os, const sparse::AnyWeight& w) {
  // Weights serialize through their masked-dense reconstruction plus the
  // structural metadata needed to rebuild the exact format: simple,
  // version-stable, and exact (the formats are lossless views).
  std::visit(
      [&](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, sparse::DenseWeight>) {
          put_u32(os, static_cast<std::uint32_t>(Tag::kDense));
          put_matrix(os, v.matrix());
        } else if constexpr (std::is_same_v<T, sparse::RowPrunedWeight>) {
          put_u32(os, static_cast<std::uint32_t>(Tag::kRow));
          put_u64(os, v.original_rows());
          put_u64(os, v.original_cols());
          put_u32s(os, v.kept_rows());
          put_matrix(os, v.condensed());
        } else if constexpr (std::is_same_v<T, sparse::ColPrunedWeight>) {
          put_u32(os, static_cast<std::uint32_t>(Tag::kColumn));
          put_u64(os, v.original_rows());
          put_u64(os, v.original_cols());
          put_u32s(os, v.kept_cols());
          put_matrix(os, v.condensed());
        } else if constexpr (std::is_same_v<T, sparse::TilePrunedWeight>) {
          put_u32(os, static_cast<std::uint32_t>(Tag::kTile));
          // Tile structure is recoverable from the dense zeros pattern.
          put_matrix(os, v.to_dense());
        } else {
          put_u32(os, static_cast<std::uint32_t>(Tag::kIrregular));
          put_matrix(os, v.to_dense());
        }
      },
      w);
}

sparse::Mask nonzero_mask(const tensor::MatrixF& m) {
  sparse::Mask mask(m.rows(), m.cols(), 0);
  for (std::size_t i = 0; i < m.size(); ++i) {
    mask.flat()[i] = m.flat()[i] != 0.0f ? 1 : 0;
  }
  return mask;
}

sparse::AnyWeight get_weight(std::istream& is) {
  const auto tag = static_cast<Tag>(get_u32(is));
  switch (tag) {
    case Tag::kDense:
      return sparse::DenseWeight(get_matrix(is));
    case Tag::kRow: {
      const std::uint64_t rows = get_u64(is);
      const std::uint64_t cols = get_u64(is);
      auto kept = get_u32s(is);
      const auto condensed = get_matrix(is);
      if (condensed.rows() != kept.size() || condensed.cols() != cols) {
        throw std::runtime_error("et::nn::load: row-pruned shape mismatch");
      }
      // Rebuild through the dense reconstruction for validation.
      tensor::MatrixF dense(rows, cols);
      for (std::size_t i = 0; i < kept.size(); ++i) {
        for (std::size_t c = 0; c < cols; ++c) {
          dense(kept[i], c) = condensed(i, c);
        }
      }
      return sparse::RowPrunedWeight::from_kept_rows(dense, std::move(kept));
    }
    case Tag::kColumn: {
      const std::uint64_t rows = get_u64(is);
      const std::uint64_t cols = get_u64(is);
      auto kept = get_u32s(is);
      const auto condensed = get_matrix(is);
      if (condensed.cols() != kept.size() || condensed.rows() != rows) {
        throw std::runtime_error(
            "et::nn::load: column-pruned shape mismatch");
      }
      tensor::MatrixF dense(rows, cols);
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t i = 0; i < kept.size(); ++i) {
          dense(r, kept[i]) = condensed(r, i);
        }
      }
      return sparse::ColPrunedWeight::from_kept_cols(dense, std::move(kept));
    }
    case Tag::kTile: {
      const auto dense = get_matrix(is);
      return sparse::TilePrunedWeight::from_masked(dense,
                                                   nonzero_mask(dense));
    }
    case Tag::kIrregular: {
      const auto dense = get_matrix(is);
      return sparse::IrregularWeight::from_masked(dense,
                                                  nonzero_mask(dense));
    }
  }
  throw std::runtime_error("et::nn::load: unknown weight tag");
}

void put_vector(std::ostream& os, const std::vector<float>& v) {
  put_floats(os, v.data(), v.size());
}

// ----------------------------------------------- section payload parts ----

void put_attention(std::ostream& os, const core::AttentionWeights& a) {
  put_weight(os, a.wq);
  put_weight(os, a.wk);
  put_weight(os, a.wv);
  put_weight(os, a.wo);
  // Pre-computed W_VO (may be empty).
  put_u64(os, a.vo.num_heads);
  put_u32s(os, a.vo.kept_cols);
  put_matrix(os, a.vo.weight);
}

core::AttentionWeights get_attention(std::istream& is) {
  core::AttentionWeights a;
  a.wq = get_weight(is);
  a.wk = get_weight(is);
  a.wv = get_weight(is);
  a.wo = get_weight(is);
  a.vo.num_heads = get_u64(is);
  a.vo.kept_cols = get_u32s(is);
  a.vo.weight = get_matrix(is);
  return a;
}

void save_encoder_sections(std::ostream& os, const EncoderWeights& w,
                           const std::string& prefix) {
  put_section(os, prefix + "attention",
              [&](std::ostream& p) { put_attention(p, w.attn); });
  put_section(os, prefix + "ffn", [&](std::ostream& p) {
    put_weight(p, w.w_ff1);
    put_weight(p, w.w_ff2);
    put_vector(p, w.b_ff1);
    put_vector(p, w.b_ff2);
  });
  put_section(os, prefix + "layernorm", [&](std::ostream& p) {
    put_vector(p, w.ln1_gamma);
    put_vector(p, w.ln1_beta);
    put_vector(p, w.ln2_gamma);
    put_vector(p, w.ln2_beta);
  });
}

EncoderWeights load_encoder_sections(std::istream& is,
                                     const std::string& prefix) {
  EncoderWeights w;
  w.attn = get_section(is, prefix + "attention",
                       [](std::istream& p) { return get_attention(p); });
  get_section(is, prefix + "ffn", [&](std::istream& p) {
    w.w_ff1 = get_weight(p);
    w.w_ff2 = get_weight(p);
    w.b_ff1 = get_floats(p);
    w.b_ff2 = get_floats(p);
    return 0;
  });
  get_section(is, prefix + "layernorm", [&](std::istream& p) {
    w.ln1_gamma = get_floats(p);
    w.ln1_beta = get_floats(p);
    w.ln2_gamma = get_floats(p);
    w.ln2_beta = get_floats(p);
    return 0;
  });
  return w;
}

/// Legacy v1 layer layout: a flat, unchecksummed field sequence.
void save_encoder_weights_v1(std::ostream& os, const EncoderWeights& w) {
  put_weight(os, w.attn.wq);
  put_weight(os, w.attn.wk);
  put_weight(os, w.attn.wv);
  put_weight(os, w.attn.wo);
  put_u64(os, w.attn.vo.num_heads);
  put_u32s(os, w.attn.vo.kept_cols);
  put_matrix(os, w.attn.vo.weight);
  put_weight(os, w.w_ff1);
  put_weight(os, w.w_ff2);
  put_vector(os, w.b_ff1);
  put_vector(os, w.b_ff2);
  put_vector(os, w.ln1_gamma);
  put_vector(os, w.ln1_beta);
  put_vector(os, w.ln2_gamma);
  put_vector(os, w.ln2_beta);
}

EncoderWeights load_encoder_weights_v1(std::istream& is) {
  EncoderWeights w;
  w.attn.wq = get_weight(is);
  w.attn.wk = get_weight(is);
  w.attn.wv = get_weight(is);
  w.attn.wo = get_weight(is);
  w.attn.vo.num_heads = get_u64(is);
  w.attn.vo.kept_cols = get_u32s(is);
  w.attn.vo.weight = get_matrix(is);
  w.w_ff1 = get_weight(is);
  w.w_ff2 = get_weight(is);
  w.b_ff1 = get_floats(is);
  w.b_ff2 = get_floats(is);
  w.ln1_gamma = get_floats(is);
  w.ln1_beta = get_floats(is);
  w.ln2_gamma = get_floats(is);
  w.ln2_beta = get_floats(is);
  return w;
}

std::string layer_prefix(std::uint64_t i) {
  return "layer" + std::to_string(i) + "/";
}

void warn_legacy(const char* kind) {
  std::cerr << "et::nn::load: warning: loading legacy " << kind
            << " checkpoint without per-section checksums; re-save to "
               "upgrade to the checksummed v2 format\n";
}

}  // namespace

void save_encoder_weights(std::ostream& os, const EncoderWeights& w) {
  save_encoder_sections(os, w, "");
}

EncoderWeights load_encoder_weights(std::istream& is) {
  return load_encoder_sections(is, "");
}

void save_decoder_stack(std::ostream& os,
                        const std::vector<DecoderWeights>& layers) {
  put_u32(os, kDecMagicV2);
  put_u32(os, kVersion2);
  put_u64(os, layers.size());
  for (std::uint64_t i = 0; i < layers.size(); ++i) {
    const auto& w = layers[i];
    const std::string prefix = layer_prefix(i);
    put_section(os, prefix + "self_attention",
                [&](std::ostream& p) { put_attention(p, w.self_attn); });
    put_section(os, prefix + "cross_attention",
                [&](std::ostream& p) { put_attention(p, w.cross_attn); });
    put_section(os, prefix + "ffn", [&](std::ostream& p) {
      put_weight(p, w.w_ff1);
      put_weight(p, w.w_ff2);
      put_vector(p, w.b_ff1);
      put_vector(p, w.b_ff2);
    });
    put_section(os, prefix + "layernorm", [&](std::ostream& p) {
      put_vector(p, w.ln1_gamma);
      put_vector(p, w.ln1_beta);
      put_vector(p, w.ln2_gamma);
      put_vector(p, w.ln2_beta);
      put_vector(p, w.ln3_gamma);
      put_vector(p, w.ln3_beta);
    });
  }
}

void save_decoder_stack_v1(std::ostream& os,
                           const std::vector<DecoderWeights>& layers) {
  put_u32(os, kDecMagicV1);
  put_u32(os, kVersion1);
  put_u64(os, layers.size());
  for (const auto& w : layers) {
    put_attention(os, w.self_attn);
    put_attention(os, w.cross_attn);
    put_weight(os, w.w_ff1);
    put_weight(os, w.w_ff2);
    put_vector(os, w.b_ff1);
    put_vector(os, w.b_ff2);
    put_vector(os, w.ln1_gamma);
    put_vector(os, w.ln1_beta);
    put_vector(os, w.ln2_gamma);
    put_vector(os, w.ln2_beta);
    put_vector(os, w.ln3_gamma);
    put_vector(os, w.ln3_beta);
  }
}

std::vector<DecoderWeights> load_decoder_stack(std::istream& is) {
  const std::uint32_t magic = get_u32(is);
  if (magic != kDecMagicV1 && magic != kDecMagicV2) {
    throw std::runtime_error("et::nn::load: bad magic (not an ETD file)");
  }
  const std::uint32_t version = get_u32(is);
  if ((magic == kDecMagicV1 && version != kVersion1) ||
      (magic == kDecMagicV2 && version != kVersion2)) {
    throw std::runtime_error("et::nn::load: unsupported decoder version " +
                             std::to_string(version));
  }
  if (magic == kDecMagicV1) warn_legacy("ETD1");
  const std::uint64_t count = get_u64(is);
  if (count > kMaxLayers) {
    throw std::runtime_error("et::nn::load: implausible layer count " +
                             std::to_string(count));
  }
  std::vector<DecoderWeights> layers;
  layers.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    DecoderWeights w;
    if (magic == kDecMagicV1) {
      w.self_attn = get_attention(is);
      w.cross_attn = get_attention(is);
      w.w_ff1 = get_weight(is);
      w.w_ff2 = get_weight(is);
      w.b_ff1 = get_floats(is);
      w.b_ff2 = get_floats(is);
      w.ln1_gamma = get_floats(is);
      w.ln1_beta = get_floats(is);
      w.ln2_gamma = get_floats(is);
      w.ln2_beta = get_floats(is);
      w.ln3_gamma = get_floats(is);
      w.ln3_beta = get_floats(is);
    } else {
      const std::string prefix = layer_prefix(i);
      w.self_attn = get_section(is, prefix + "self_attention",
                                [](std::istream& p) {
                                  return get_attention(p);
                                });
      w.cross_attn = get_section(is, prefix + "cross_attention",
                                 [](std::istream& p) {
                                   return get_attention(p);
                                 });
      get_section(is, prefix + "ffn", [&](std::istream& p) {
        w.w_ff1 = get_weight(p);
        w.w_ff2 = get_weight(p);
        w.b_ff1 = get_floats(p);
        w.b_ff2 = get_floats(p);
        return 0;
      });
      get_section(is, prefix + "layernorm", [&](std::istream& p) {
        w.ln1_gamma = get_floats(p);
        w.ln1_beta = get_floats(p);
        w.ln2_gamma = get_floats(p);
        w.ln2_beta = get_floats(p);
        w.ln3_gamma = get_floats(p);
        w.ln3_beta = get_floats(p);
        return 0;
      });
    }
    layers.push_back(std::move(w));
  }
  return layers;
}

void save_encoder_stack(std::ostream& os,
                        const std::vector<EncoderWeights>& layers) {
  put_u32(os, kMagicV2);
  put_u32(os, kVersion2);
  put_u64(os, layers.size());
  for (std::uint64_t i = 0; i < layers.size(); ++i) {
    save_encoder_sections(os, layers[i], layer_prefix(i));
  }
}

void save_encoder_stack_v1(std::ostream& os,
                           const std::vector<EncoderWeights>& layers) {
  put_u32(os, kMagicV1);
  put_u32(os, kVersion1);
  put_u64(os, layers.size());
  for (const auto& layer : layers) save_encoder_weights_v1(os, layer);
}

std::vector<EncoderWeights> load_encoder_stack(std::istream& is) {
  const std::uint32_t magic = get_u32(is);
  if (magic != kMagicV1 && magic != kMagicV2) {
    throw std::runtime_error("et::nn::load: bad magic (not an ETW file)");
  }
  const std::uint32_t version = get_u32(is);
  if ((magic == kMagicV1 && version != kVersion1) ||
      (magic == kMagicV2 && version != kVersion2)) {
    throw std::runtime_error("et::nn::load: unsupported version " +
                             std::to_string(version));
  }
  if (magic == kMagicV1) warn_legacy("ETW1");
  const std::uint64_t count = get_u64(is);
  if (count > kMaxLayers) {
    throw std::runtime_error("et::nn::load: implausible layer count " +
                             std::to_string(count));
  }
  std::vector<EncoderWeights> layers;
  layers.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    layers.push_back(magic == kMagicV1
                         ? load_encoder_weights_v1(is)
                         : load_encoder_sections(is, layer_prefix(i)));
  }
  return layers;
}

void save_encoder_stack(const std::string& path,
                        const std::vector<EncoderWeights>& layers) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  save_encoder_stack(f, layers);
  if (!f) throw std::runtime_error("write failed: " + path);
}

std::vector<EncoderWeights> load_encoder_stack(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for reading: " + path);
  return load_encoder_stack(f);
}

}  // namespace et::nn
