#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace et::nn {

namespace {

constexpr std::uint32_t kMagic = 0x31575445;   // "ETW1" (encoder stacks)
constexpr std::uint32_t kDecMagic = 0x31445445;  // "ETD1" (decoder stacks)
constexpr std::uint32_t kVersion = 1;

enum class Tag : std::uint32_t {
  kDense = 1,
  kRow = 2,
  kColumn = 3,
  kTile = 4,
  kIrregular = 5,
};

// ------------------------------------------------------- raw helpers ----

void put_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void put_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint32_t get_u32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("et::nn::load: truncated stream (u32)");
  return v;
}

std::uint64_t get_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("et::nn::load: truncated stream (u64)");
  return v;
}

void put_floats(std::ostream& os, const float* data, std::size_t n) {
  put_u64(os, n);
  os.write(reinterpret_cast<const char*>(data),
           static_cast<std::streamsize>(n * sizeof(float)));
}

std::vector<float> get_floats(std::istream& is) {
  const std::uint64_t n = get_u64(is);
  std::vector<float> out(n);
  is.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(n * sizeof(float)));
  if (!is) throw std::runtime_error("et::nn::load: truncated float block");
  return out;
}

void put_u32s(std::ostream& os, const std::vector<std::uint32_t>& v) {
  put_u64(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(std::uint32_t)));
}

std::vector<std::uint32_t> get_u32s(std::istream& is) {
  const std::uint64_t n = get_u64(is);
  std::vector<std::uint32_t> out(n);
  is.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(n * sizeof(std::uint32_t)));
  if (!is) throw std::runtime_error("et::nn::load: truncated index block");
  return out;
}

void put_matrix(std::ostream& os, const tensor::MatrixF& m) {
  put_u64(os, m.rows());
  put_u64(os, m.cols());
  put_floats(os, m.data(), m.size());
}

tensor::MatrixF get_matrix(std::istream& is) {
  const std::uint64_t rows = get_u64(is);
  const std::uint64_t cols = get_u64(is);
  const auto flat = get_floats(is);
  if (flat.size() != rows * cols) {
    throw std::runtime_error("et::nn::load: matrix size mismatch");
  }
  tensor::MatrixF m(rows, cols);
  std::copy(flat.begin(), flat.end(), m.data());
  return m;
}

// ----------------------------------------------------- weight formats ----

void put_weight(std::ostream& os, const sparse::AnyWeight& w) {
  // Weights serialize through their masked-dense reconstruction plus the
  // structural metadata needed to rebuild the exact format: simple,
  // version-stable, and exact (the formats are lossless views).
  std::visit(
      [&](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, sparse::DenseWeight>) {
          put_u32(os, static_cast<std::uint32_t>(Tag::kDense));
          put_matrix(os, v.matrix());
        } else if constexpr (std::is_same_v<T, sparse::RowPrunedWeight>) {
          put_u32(os, static_cast<std::uint32_t>(Tag::kRow));
          put_u64(os, v.original_rows());
          put_u64(os, v.original_cols());
          put_u32s(os, v.kept_rows());
          put_matrix(os, v.condensed());
        } else if constexpr (std::is_same_v<T, sparse::ColPrunedWeight>) {
          put_u32(os, static_cast<std::uint32_t>(Tag::kColumn));
          put_u64(os, v.original_rows());
          put_u64(os, v.original_cols());
          put_u32s(os, v.kept_cols());
          put_matrix(os, v.condensed());
        } else if constexpr (std::is_same_v<T, sparse::TilePrunedWeight>) {
          put_u32(os, static_cast<std::uint32_t>(Tag::kTile));
          // Tile structure is recoverable from the dense zeros pattern.
          put_matrix(os, v.to_dense());
        } else {
          put_u32(os, static_cast<std::uint32_t>(Tag::kIrregular));
          put_matrix(os, v.to_dense());
        }
      },
      w);
}

sparse::Mask nonzero_mask(const tensor::MatrixF& m) {
  sparse::Mask mask(m.rows(), m.cols(), 0);
  for (std::size_t i = 0; i < m.size(); ++i) {
    mask.flat()[i] = m.flat()[i] != 0.0f ? 1 : 0;
  }
  return mask;
}

sparse::AnyWeight get_weight(std::istream& is) {
  const auto tag = static_cast<Tag>(get_u32(is));
  switch (tag) {
    case Tag::kDense:
      return sparse::DenseWeight(get_matrix(is));
    case Tag::kRow: {
      const std::uint64_t rows = get_u64(is);
      const std::uint64_t cols = get_u64(is);
      auto kept = get_u32s(is);
      const auto condensed = get_matrix(is);
      if (condensed.rows() != kept.size() || condensed.cols() != cols) {
        throw std::runtime_error("et::nn::load: row-pruned shape mismatch");
      }
      // Rebuild through the dense reconstruction for validation.
      tensor::MatrixF dense(rows, cols);
      for (std::size_t i = 0; i < kept.size(); ++i) {
        for (std::size_t c = 0; c < cols; ++c) {
          dense(kept[i], c) = condensed(i, c);
        }
      }
      return sparse::RowPrunedWeight::from_kept_rows(dense, std::move(kept));
    }
    case Tag::kColumn: {
      const std::uint64_t rows = get_u64(is);
      const std::uint64_t cols = get_u64(is);
      auto kept = get_u32s(is);
      const auto condensed = get_matrix(is);
      if (condensed.cols() != kept.size() || condensed.rows() != rows) {
        throw std::runtime_error(
            "et::nn::load: column-pruned shape mismatch");
      }
      tensor::MatrixF dense(rows, cols);
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t i = 0; i < kept.size(); ++i) {
          dense(r, kept[i]) = condensed(r, i);
        }
      }
      return sparse::ColPrunedWeight::from_kept_cols(dense, std::move(kept));
    }
    case Tag::kTile: {
      const auto dense = get_matrix(is);
      return sparse::TilePrunedWeight::from_masked(dense,
                                                   nonzero_mask(dense));
    }
    case Tag::kIrregular: {
      const auto dense = get_matrix(is);
      return sparse::IrregularWeight::from_masked(dense,
                                                  nonzero_mask(dense));
    }
  }
  throw std::runtime_error("et::nn::load: unknown weight tag");
}

void put_vector(std::ostream& os, const std::vector<float>& v) {
  put_floats(os, v.data(), v.size());
}

}  // namespace

void save_encoder_weights(std::ostream& os, const EncoderWeights& w) {
  put_weight(os, w.attn.wq);
  put_weight(os, w.attn.wk);
  put_weight(os, w.attn.wv);
  put_weight(os, w.attn.wo);
  // Pre-computed W_VO (may be empty).
  put_u64(os, w.attn.vo.num_heads);
  put_u32s(os, w.attn.vo.kept_cols);
  put_matrix(os, w.attn.vo.weight);
  put_weight(os, w.w_ff1);
  put_weight(os, w.w_ff2);
  put_vector(os, w.b_ff1);
  put_vector(os, w.b_ff2);
  put_vector(os, w.ln1_gamma);
  put_vector(os, w.ln1_beta);
  put_vector(os, w.ln2_gamma);
  put_vector(os, w.ln2_beta);
}

EncoderWeights load_encoder_weights(std::istream& is) {
  EncoderWeights w;
  w.attn.wq = get_weight(is);
  w.attn.wk = get_weight(is);
  w.attn.wv = get_weight(is);
  w.attn.wo = get_weight(is);
  w.attn.vo.num_heads = get_u64(is);
  w.attn.vo.kept_cols = get_u32s(is);
  w.attn.vo.weight = get_matrix(is);
  w.w_ff1 = get_weight(is);
  w.w_ff2 = get_weight(is);
  w.b_ff1 = get_floats(is);
  w.b_ff2 = get_floats(is);
  w.ln1_gamma = get_floats(is);
  w.ln1_beta = get_floats(is);
  w.ln2_gamma = get_floats(is);
  w.ln2_beta = get_floats(is);
  return w;
}

namespace {
void put_attention(std::ostream& os, const core::AttentionWeights& a) {
  put_weight(os, a.wq);
  put_weight(os, a.wk);
  put_weight(os, a.wv);
  put_weight(os, a.wo);
  put_u64(os, a.vo.num_heads);
  put_u32s(os, a.vo.kept_cols);
  put_matrix(os, a.vo.weight);
}

core::AttentionWeights get_attention(std::istream& is) {
  core::AttentionWeights a;
  a.wq = get_weight(is);
  a.wk = get_weight(is);
  a.wv = get_weight(is);
  a.wo = get_weight(is);
  a.vo.num_heads = get_u64(is);
  a.vo.kept_cols = get_u32s(is);
  a.vo.weight = get_matrix(is);
  return a;
}
}  // namespace

void save_decoder_stack(std::ostream& os,
                        const std::vector<DecoderWeights>& layers) {
  put_u32(os, kDecMagic);
  put_u32(os, kVersion);
  put_u64(os, layers.size());
  for (const auto& w : layers) {
    put_attention(os, w.self_attn);
    put_attention(os, w.cross_attn);
    put_weight(os, w.w_ff1);
    put_weight(os, w.w_ff2);
    put_vector(os, w.b_ff1);
    put_vector(os, w.b_ff2);
    put_vector(os, w.ln1_gamma);
    put_vector(os, w.ln1_beta);
    put_vector(os, w.ln2_gamma);
    put_vector(os, w.ln2_beta);
    put_vector(os, w.ln3_gamma);
    put_vector(os, w.ln3_beta);
  }
}

std::vector<DecoderWeights> load_decoder_stack(std::istream& is) {
  if (get_u32(is) != kDecMagic) {
    throw std::runtime_error("et::nn::load: bad magic (not an ETD file)");
  }
  if (get_u32(is) != kVersion) {
    throw std::runtime_error("et::nn::load: unsupported decoder version");
  }
  const std::uint64_t count = get_u64(is);
  std::vector<DecoderWeights> layers;
  layers.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    DecoderWeights w;
    w.self_attn = get_attention(is);
    w.cross_attn = get_attention(is);
    w.w_ff1 = get_weight(is);
    w.w_ff2 = get_weight(is);
    w.b_ff1 = get_floats(is);
    w.b_ff2 = get_floats(is);
    w.ln1_gamma = get_floats(is);
    w.ln1_beta = get_floats(is);
    w.ln2_gamma = get_floats(is);
    w.ln2_beta = get_floats(is);
    w.ln3_gamma = get_floats(is);
    w.ln3_beta = get_floats(is);
    layers.push_back(std::move(w));
  }
  return layers;
}

void save_encoder_stack(std::ostream& os,
                        const std::vector<EncoderWeights>& layers) {
  put_u32(os, kMagic);
  put_u32(os, kVersion);
  put_u64(os, layers.size());
  for (const auto& layer : layers) save_encoder_weights(os, layer);
}

std::vector<EncoderWeights> load_encoder_stack(std::istream& is) {
  if (get_u32(is) != kMagic) {
    throw std::runtime_error("et::nn::load: bad magic (not an ETW file)");
  }
  const std::uint32_t version = get_u32(is);
  if (version != kVersion) {
    throw std::runtime_error("et::nn::load: unsupported version " +
                             std::to_string(version));
  }
  const std::uint64_t count = get_u64(is);
  std::vector<EncoderWeights> layers;
  layers.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    layers.push_back(load_encoder_weights(is));
  }
  return layers;
}

void save_encoder_stack(const std::string& path,
                        const std::vector<EncoderWeights>& layers) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  save_encoder_stack(f, layers);
  if (!f) throw std::runtime_error("write failed: " + path);
}

std::vector<EncoderWeights> load_encoder_stack(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for reading: " + path);
  return load_encoder_stack(f);
}

}  // namespace et::nn
