// Slot-based batched generation: the serving-side engine over the
// incremental decode path. Up to `max_batch` sequences are decoded
// together, one fused tick at a time — the per-slot q/k/v projections
// collapse into one batched GEMM (kernels::batched_gemm_nt) and the MLP
// runs once over the stacked rows, amortizing weight loads and kernel
// launches across the batch, while attention stays partitioned per slot
// (each sequence attends over its own KVCache, E.T.'s single-row OTF
// instance). Finished sequences (eos / max_tokens / kv_cache_full /
// kernel_fault) retire their slot, which is immediately backfilled from a
// FIFO pending queue; KV storage is recycled through the paged, block-
// refcounted core::PagedKVPool (docs/serving.md "Paged KV and prefix
// sharing") — retiring a slot drops one reference per block in its
// table, so prompt-prefix blocks other requests still alias survive.
//
// The correctness contract, enforced by tests/test_batched_generation.cpp:
// every per-row kernel is row-wise independent, so a batch-of-N decode is
// BIT-IDENTICAL to N independent nn::generate runs — batching buys
// throughput, never different answers.
//
// Fault semantics (extends the PR-1 truncate-on-fault step atomicity):
//   - a fault in a slot-attributed kernel (that slot's attention) rolls
//     back and retires only the owning slot; the other slots' tick
//     completes unaffected;
//   - a fault in a shared batched kernel rolls every slot back to its
//     pre-tick context and the tick degrades to per-slot stepping
//     (recorded via Device::note_fallback), where any persistent fault is
//     attributable again.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "core/adaptive.hpp"
#include "core/block_allocator.hpp"
#include "core/kv_cache.hpp"
#include "nn/encoder.hpp"
#include "nn/generation.hpp"
#include "nn/model.hpp"

namespace et::nn {

/// One generation job: the shared nn::DecodeParams fields —
/// semantics match a `nn::generate(ctx, session, params)` call — plus an
/// optional recompute-resume prefix.
struct GenerationRequest : DecodeParams {
  /// Tokens an earlier run of this job already emitted (the serving
  /// runtime's preemption/retry resume path, docs/robustness.md). They
  /// are REPLAYED through the fused decode tick to rebuild the KV caches
  /// — embed() runs for each, select() does NOT (the outcome is already
  /// known, and the caller's select may carry observable side effects) —
  /// and they re-appear at the front of the result's token stream, so a
  /// resumed job's transcript is bit-identical to an uninterrupted run.
  std::vector<std::int32_t> resume_tokens;
};

class BatchedGenerationScheduler {
 public:
  /// Constructed from the validated nn::Model handle (copied; the layer
  /// vector it borrows must outlive the scheduler). KV storage is the
  /// PAGED pool (core::PagedKVPool): fixed-size refcounted blocks with
  /// per-slot block tables, shaped by `kv` — per-layer V-plane widths
  /// from the Model are preserved inside the block geometry, so
  /// pre-computed W_VO and condensed row-pruned layouts still cache only
  /// what they need. The default PagedKVOptions sizes the pool so no
  /// workload the old contiguous pool could serve can OOM; a smaller
  /// num_blocks makes block exhaustion a typed kv_cache_full stop, and
  /// kv.enable_prefix_sharing lets same-group requests with a common
  /// prompt prefix alias blocks copy-on-write (memory only — transcripts
  /// and metrics are bit-identical either way).
  /// Throws std::invalid_argument on a zero batch size (model validity
  /// is the Model's own job).
  BatchedGenerationScheduler(const Model& model, std::size_t max_batch,
                             core::PagedKVOptions kv = {});

  /// Enqueue a request; returns its id (index into run()'s results).
  /// Admission to a slot happens at the next tick.
  std::size_t submit(GenerationRequest req);

  /// Finish request `id` early with `reason` — kCancelled for an explicit
  /// caller cancel, kDeadlineExceeded when the serving runtime's budget
  /// expired (docs/serving.md). A still-queued request finishes with no
  /// tokens; an active one keeps every token emitted so far and frees its
  /// slot for the next tick's backfill. Returns false (and does nothing)
  /// when the request already finished.
  bool cancel(std::size_t id, StopReason reason = StopReason::kCancelled);

  /// Tokens emitted so far for request `id`, finished or not — the
  /// streaming view the serving layer reads after each tick to deliver
  /// per-token callbacks.
  [[nodiscard]] const std::vector<std::int32_t>& tokens_so_far(
      std::size_t id) const {
    return results_.at(id).tokens;
  }

  /// The paged slot storage, for capacity/memory accounting (the
  /// kv_bytes gauges count resident blocks) and the sharing stats.
  [[nodiscard]] const core::PagedKVPool& pool() const noexcept {
    return pool_;
  }

  /// One decode tick: backfill free slots from the queue, step every
  /// active sequence by one token, retire finished ones. The per-slot
  /// attention segment of the tick runs in parallel across active slots
  /// (one chunk per slot through ctx.parallel_for), bit-identical to the
  /// serial tick at any thread count.
  void tick(core::ExecContext& ctx);

  /// Drain: tick until every submitted request has a result. Returns all
  /// results so far, indexed by the id submit() returned.
  std::vector<GenerationResult> run(core::ExecContext& ctx);

  [[nodiscard]] const Model& model() const noexcept { return model_; }

  [[nodiscard]] bool idle() const noexcept {
    return queue_.empty() && active() == 0;
  }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t active() const noexcept;
  [[nodiscard]] std::size_t max_batch() const noexcept {
    return slots_.size();
  }

  [[nodiscard]] bool finished(std::size_t id) const {
    return completed_.at(id);
  }
  [[nodiscard]] const GenerationResult& result(std::size_t id) const;

  /// Tick accounting for benchmarks and tests.
  [[nodiscard]] std::size_t ticks() const noexcept { return ticks_; }
  [[nodiscard]] std::size_t batched_ticks() const noexcept {
    return batched_ticks_;
  }
  [[nodiscard]] std::size_t per_slot_fallback_ticks() const noexcept {
    return fallback_ticks_;
  }

 private:
  struct ActiveSlot {
    std::size_t request_id = 0;
    std::size_t replayed = 0;  ///< resume_tokens consumed so far
  };

  void admit(std::size_t request_id);
  void retire(std::size_t pool_slot, StopReason reason);

  Model model_;
  core::PagedKVPool pool_;
  std::vector<std::optional<ActiveSlot>> slots_;  // index == pool slot id
  std::deque<std::size_t> queue_;                 // pending request ids

  std::vector<GenerationRequest> requests_;
  std::vector<GenerationResult> results_;
  std::vector<bool> completed_;

  std::size_t ticks_ = 0;
  std::size_t batched_ticks_ = 0;
  std::size_t fallback_ticks_ = 0;
};

}  // namespace et::nn
