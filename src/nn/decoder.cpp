#include "nn/decoder.hpp"

#include <cassert>
#include <random>

#include "kernels/elementwise.hpp"
#include "kernels/linear.hpp"
#include "nn/reference.hpp"
#include "tensor/compare.hpp"
#include "tensor/random.hpp"

namespace et::nn {

namespace {

using numeric::Precision;

std::vector<float> random_bias(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 0.02f);
  std::vector<float> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

void apply_bias_gelu_host(tensor::MatrixF& h, const std::vector<float>& bias,
                          Precision p) {
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  for (std::size_t r = 0; r < h.rows(); ++r) {
    for (std::size_t c = 0; c < h.cols(); ++c) {
      const float v = h(r, c) + bias[c];
      const float inner = kSqrt2OverPi * (v + 0.044715f * v * v * v);
      h(r, c) = numeric::round_to_storage(
          p, 0.5f * v * (1.0f + std::tanh(inner)));
    }
  }
}

}  // namespace

DecoderWeights make_dense_decoder_weights(const ModelConfig& cfg,
                                          std::uint64_t seed) {
  DecoderWeights w;
  core::AttentionConfig acfg;
  acfg.d_model = cfg.d_model;
  acfg.num_heads = cfg.num_heads;
  w.self_attn = core::make_dense_weights(acfg, seed);
  w.cross_attn = core::make_dense_weights(acfg, seed + 1000);

  tensor::MatrixF ff1(cfg.d_ff, cfg.d_model), ff2(cfg.d_model, cfg.d_ff);
  tensor::fill_normal(ff1, seed + 2001, 0.0f,
                      1.0f / std::sqrt(static_cast<float>(cfg.d_model)));
  tensor::fill_normal(ff2, seed + 2002, 0.0f,
                      1.0f / std::sqrt(static_cast<float>(cfg.d_ff)));
  w.w_ff1 = sparse::DenseWeight(std::move(ff1));
  w.w_ff2 = sparse::DenseWeight(std::move(ff2));
  w.b_ff1 = random_bias(cfg.d_ff, seed + 2003);
  w.b_ff2 = random_bias(cfg.d_model, seed + 2004);
  w.ln1_gamma.assign(cfg.d_model, 1.0f);
  w.ln1_beta.assign(cfg.d_model, 0.0f);
  w.ln2_gamma.assign(cfg.d_model, 1.0f);
  w.ln2_beta.assign(cfg.d_model, 0.0f);
  w.ln3_gamma.assign(cfg.d_model, 1.0f);
  w.ln3_beta.assign(cfg.d_model, 0.0f);
  return w;
}

tensor::MatrixF decoder_forward(core::ExecContext& ctx,
                                const tensor::MatrixF& x,
                                const tensor::MatrixF& memory,
                                const DecoderWeights& w,
                                const EncoderOptions& opt) {
  gpusim::Device& dev = ctx.device();
  assert(x.rows() == opt.attn.seq_len && x.cols() == opt.attn.d_model);
  assert(memory.cols() == opt.attn.d_model);
  const Precision p = opt.attn.precision;

  // --- masked self-attention (always causal in a decoder) ---
  core::AttentionConfig self_cfg = opt.attn;
  self_cfg.causal_mask = true;
  tensor::MatrixF h = core::adaptive_attention(ctx, x, w.self_attn, self_cfg,
                                               opt.adaptive);
  kernels::fused_residual_layernorm(dev, h, x, w.ln1_gamma, w.ln1_beta, p,
                                    "dec_residual_layernorm1");

  // --- cross-attention over the encoder memory (never masked) ---
  // The encoder memory is the streamed operand, so the dispatch mirrors
  // choose_attention_impl with the *memory* length as the crossover axis:
  // stream it through the flash kernel once it spans more than one OTF
  // row tile (and the Br×Bc tile fits), otherwise keep the Eq. 6 kernel.
  // A forced policy pins the operator the same way it does for
  // self-attention (only flash and otf exist as cross variants).
  core::AttentionConfig cross_cfg = opt.attn;
  cross_cfg.causal_mask = false;
  const std::size_t kv_len = memory.rows();
  const bool flash_cross =
      opt.adaptive.forced
          ? *opt.adaptive.forced == core::AttentionImpl::kFlash
          : kv_len > opt.adaptive.flash_min_seq &&
                dev.fits_shared(core::flash_shared_bytes(cross_cfg, kv_len));
  tensor::MatrixF c =
      flash_cross
          ? core::flash_cross_attention(ctx, h, memory, w.cross_attn,
                                        cross_cfg)
          : core::otf_cross_attention(ctx, h, memory, w.cross_attn,
                                      cross_cfg);
  kernels::fused_residual_layernorm(dev, c, h, w.ln2_gamma, w.ln2_beta, p,
                                    "dec_residual_layernorm2");

  // --- MLP (bias+GELU and the second bias folded into GEMM epilogues,
  // as in the E.T./FasterTransformer encoder path) ---
  kernels::LinearOptions lopt;
  lopt.precision = p;
  tensor::MatrixF m = kernels::linear(ctx, c, w.w_ff1, lopt, "dec_ff1").y;
  if (!dev.traffic_only()) apply_bias_gelu_host(m, w.b_ff1, p);
  tensor::MatrixF y = kernels::linear(ctx, m, w.w_ff2, lopt, "dec_ff2").y;
  if (!dev.traffic_only()) {
    for (std::size_t r = 0; r < y.rows(); ++r) {
      for (std::size_t col = 0; col < y.cols(); ++col) {
        y(r, col) = numeric::round_to_storage(p, y(r, col) + w.b_ff2[col]);
      }
    }
  }
  kernels::fused_residual_layernorm(dev, y, c, w.ln3_gamma, w.ln3_beta, p,
                                    "dec_residual_layernorm3");
  return y;
}

tensor::MatrixF decoder_stack_forward(core::ExecContext& ctx,
                                      const tensor::MatrixF& x,
                                      const tensor::MatrixF& memory,
                                      const std::vector<DecoderWeights>& layers,
                                      const EncoderOptions& opt) {
  tensor::MatrixF h = x;
  for (const auto& layer : layers) {
    h = decoder_forward(ctx, h, memory, layer, opt);
  }
  return h;
}

tensor::MatrixF seq2seq_forward(core::ExecContext& ctx,
                                const tensor::MatrixF& source,
                                const tensor::MatrixF& target,
                                const std::vector<EncoderWeights>& encoder_layers,
                                const std::vector<DecoderWeights>& decoder_layers,
                                const EncoderOptions& encoder_opt,
                                const EncoderOptions& decoder_opt) {
  const tensor::MatrixF memory =
      encoder_stack_forward(ctx, source, encoder_layers, encoder_opt);
  return decoder_stack_forward(ctx, target, memory, decoder_layers,
                               decoder_opt);
}

tensor::MatrixF reference_decoder(const tensor::MatrixF& x,
                                  const tensor::MatrixF& memory,
                                  const DecoderWeights& w,
                                  const core::AttentionConfig& cfg) {
  const auto layernorm_host = [](tensor::MatrixF& m,
                                 const std::vector<float>& gamma,
                                 const std::vector<float>& beta) {
    for (std::size_t r = 0; r < m.rows(); ++r) {
      double mean = 0.0;
      for (std::size_t c = 0; c < m.cols(); ++c) mean += m(r, c);
      mean /= static_cast<double>(m.cols());
      double var = 0.0;
      for (std::size_t c = 0; c < m.cols(); ++c) {
        const double d = m(r, c) - mean;
        var += d * d;
      }
      var /= static_cast<double>(m.cols());
      const double inv = 1.0 / std::sqrt(var + 1e-5);
      for (std::size_t c = 0; c < m.cols(); ++c) {
        m(r, c) = static_cast<float>((m(r, c) - mean) * inv * gamma[c] +
                                     beta[c]);
      }
    }
  };

  core::AttentionConfig self_cfg = cfg;
  self_cfg.causal_mask = true;
  tensor::MatrixF h = reference_attention(x, w.self_attn, self_cfg);
  for (std::size_t i = 0; i < h.size(); ++i) h.flat()[i] += x.flat()[i];
  layernorm_host(h, w.ln1_gamma, w.ln1_beta);

  core::AttentionConfig cross_cfg = cfg;
  cross_cfg.causal_mask = false;
  tensor::MatrixF c = reference_cross_attention(h, memory, w.cross_attn,
                                                cross_cfg);
  for (std::size_t i = 0; i < c.size(); ++i) c.flat()[i] += h.flat()[i];
  layernorm_host(c, w.ln2_gamma, w.ln2_beta);

  // MLP in float (the reference attention path already bounds the error).
  EncoderWeights mlp_only;
  mlp_only.w_ff1 = w.w_ff1;
  mlp_only.w_ff2 = w.w_ff2;
  const auto& ff1 = sparse::to_dense(w.w_ff1);
  const auto& ff2 = sparse::to_dense(w.w_ff2);
  tensor::MatrixF m(c.rows(), ff1.rows());
  for (std::size_t r = 0; r < c.rows(); ++r) {
    for (std::size_t j = 0; j < ff1.rows(); ++j) {
      double acc = w.b_ff1[j];
      for (std::size_t k = 0; k < c.cols(); ++k) {
        acc += static_cast<double>(c(r, k)) * static_cast<double>(ff1(j, k));
      }
      const double inner =
          0.7978845608028654 * (acc + 0.044715 * acc * acc * acc);
      m(r, j) = static_cast<float>(0.5 * acc * (1.0 + std::tanh(inner)));
    }
  }
  tensor::MatrixF y(c.rows(), ff2.rows());
  for (std::size_t r = 0; r < c.rows(); ++r) {
    for (std::size_t j = 0; j < ff2.rows(); ++j) {
      double acc = w.b_ff2[j];
      for (std::size_t k = 0; k < m.cols(); ++k) {
        acc += static_cast<double>(m(r, k)) * static_cast<double>(ff2(j, k));
      }
      y(r, j) = static_cast<float>(acc + c(r, j));
    }
  }
  layernorm_host(y, w.ln3_gamma, w.ln3_beta);
  return y;
}

}  // namespace et::nn
