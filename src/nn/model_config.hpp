// Model configurations used across the paper's evaluation (§5.1).
#pragma once

#include <cstddef>
#include <string>

namespace et::nn {

struct ModelConfig {
  std::string name;
  std::size_t num_layers = 12;
  std::size_t d_model = 768;
  std::size_t num_heads = 12;
  std::size_t d_ff = 3072;  ///< MLP hidden width (4·d_model in all models)
  std::size_t vocab_size = 30522;
  std::size_t max_seq_len = 512;
};

/// The 2-layer Transformer trained on WikiText-2 (L=2, d=800, H=4).
[[nodiscard]] inline ModelConfig transformer_wikitext() {
  return {"Transformer", 2, 800, 4, 3200, 33278, 512};
}

/// BERT_BASE (L=12, d=768, H=12, 110M parameters).
[[nodiscard]] inline ModelConfig bert_base() {
  return {"BERT_BASE", 12, 768, 12, 3072, 30522, 512};
}

/// DistilBERT (L=6, d=768, H=12).
[[nodiscard]] inline ModelConfig distilbert() {
  return {"DistilBERT", 6, 768, 12, 3072, 30522, 512};
}

/// BERT_LARGE (L=24, d=1024, H=16) — used by the §3.2 shared-memory
/// worked example.
[[nodiscard]] inline ModelConfig bert_large() {
  return {"BERT_LARGE", 24, 1024, 16, 4096, 30522, 512};
}

/// Approximate encoder-stack parameter count (attention + MLP + norms).
[[nodiscard]] inline std::size_t parameter_count(const ModelConfig& c) {
  const std::size_t attn = 4 * c.d_model * c.d_model;
  const std::size_t mlp = 2 * c.d_model * c.d_ff + c.d_ff + c.d_model;
  const std::size_t norms = 4 * c.d_model;
  return c.num_layers * (attn + mlp + norms);
}

}  // namespace et::nn
