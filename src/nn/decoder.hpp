// Transformer decoder layer and stack. The paper evaluates encoder-only
// models, but notes (§2.1) that decoders share the same structure —
// masked self-attention, cross-attention over the encoder memory, MLP —
// and that GPT-style models are decoder stacks. The decoder runs on the
// same E.T. operators: adaptive OTF self-attention (causal) plus the OTF
// cross-attention kernel, with all weights prunable.
#pragma once

#include "core/adaptive.hpp"
#include "nn/encoder.hpp"

namespace et::nn {

struct DecoderWeights {
  core::AttentionWeights self_attn;
  core::AttentionWeights cross_attn;
  sparse::AnyWeight w_ff1;
  sparse::AnyWeight w_ff2;
  std::vector<float> b_ff1, b_ff2;
  std::vector<float> ln1_gamma, ln1_beta;  // after self-attention
  std::vector<float> ln2_gamma, ln2_beta;  // after cross-attention
  std::vector<float> ln3_gamma, ln3_beta;  // after MLP
};

[[nodiscard]] DecoderWeights make_dense_decoder_weights(
    const ModelConfig& cfg, std::uint64_t seed);

/// LN(x + SelfAttn(x)) -> LN(· + CrossAttn(·, memory)) -> LN(· + MLP(·)).
/// Self-attention is causal regardless of opt.attn.causal_mask (decoders
/// are autoregressive); cross-attention is never masked.
[[nodiscard]] tensor::MatrixF decoder_forward(core::ExecContext& ctx,
                                              const tensor::MatrixF& x,
                                              const tensor::MatrixF& memory,
                                              const DecoderWeights& w,
                                              const EncoderOptions& opt);

[[nodiscard]] tensor::MatrixF decoder_stack_forward(
    core::ExecContext& ctx, const tensor::MatrixF& x,
    const tensor::MatrixF& memory, const std::vector<DecoderWeights>& layers,
    const EncoderOptions& opt);

/// Full sequence-to-sequence forward: encoder stack over the source, then
/// decoder stack over the target attending to the encoder output.
[[nodiscard]] tensor::MatrixF seq2seq_forward(
    core::ExecContext& ctx, const tensor::MatrixF& source,
    const tensor::MatrixF& target,
    const std::vector<EncoderWeights>& encoder_layers,
    const std::vector<DecoderWeights>& decoder_layers,
    const EncoderOptions& encoder_opt, const EncoderOptions& decoder_opt);

/// Double-precision host reference for one decoder layer (test oracle).
[[nodiscard]] tensor::MatrixF reference_decoder(const tensor::MatrixF& x,
                                                const tensor::MatrixF& memory,
                                                const DecoderWeights& w,
                                                const core::AttentionConfig& cfg);

}  // namespace et::nn
