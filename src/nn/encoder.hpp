// One transformer encoder layer (Fig. 1) on the simulated device, plus the
// stacked model. Four pipeline styles mirror the systems the paper
// benchmarks against each other in Figure 7:
//
//   kModular           — PyTorch-like: one kernel per op, FP32.
//   kTensorRT          — fused pointwise ops, batched GEMMs, FP16.
//   kFasterTransformer — like TensorRT with more aggressive fusion and an
//                        autotuned GEMM choice.
//   kET                — this paper: adaptive attention dispatch (the
//                        five-way flash / otf / partial_otf / fused /
//                        modular switch in core::adaptive, governed by
//                        EncoderOptions::adaptive — including a forced
//                        operator override), pre-computed linear
//                        transformation when weights provide it,
//                        pruned-format linears, pure FP16.
#pragma once

#include <cstdint>
#include <vector>

#include "core/adaptive.hpp"
#include "core/attention.hpp"
#include "core/exec_context.hpp"
#include "core/weights.hpp"
#include "gpusim/device.hpp"
#include "nn/model_config.hpp"
#include "sparse/formats.hpp"

namespace et::nn {

enum class Pipeline { kModular, kTensorRT, kFasterTransformer, kET };

[[nodiscard]] constexpr std::string_view to_string(Pipeline p) noexcept {
  switch (p) {
    case Pipeline::kModular: return "PyTorch";
    case Pipeline::kTensorRT: return "TensorRT";
    case Pipeline::kFasterTransformer: return "FasterTransformer";
    case Pipeline::kET: return "E.T.";
  }
  return "?";
}

struct EncoderWeights {
  core::AttentionWeights attn;
  sparse::AnyWeight w_ff1;  ///< (d_ff × d_model)
  sparse::AnyWeight w_ff2;  ///< (d_model × d_ff)
  std::vector<float> b_ff1;
  std::vector<float> b_ff2;
  std::vector<float> ln1_gamma, ln1_beta;
  std::vector<float> ln2_gamma, ln2_beta;
};

struct EncoderOptions {
  core::AttentionConfig attn;
  Pipeline pipeline = Pipeline::kET;
  /// E.T. operator selection (flash/otf/partial crossovers, auto-tune,
  /// forced override) — consumed by self- AND cross-attention dispatch.
  core::AdaptivePolicy adaptive;
};

/// Dense random-initialized encoder weights (deterministic).
[[nodiscard]] EncoderWeights make_dense_encoder_weights(
    const ModelConfig& cfg, std::uint64_t seed);

/// Forward one encoder layer: LN(x + Attn(x)) -> LN(y + MLP(y)).
[[nodiscard]] tensor::MatrixF encoder_forward(core::ExecContext& ctx,
                                              const tensor::MatrixF& x,
                                              const EncoderWeights& w,
                                              const EncoderOptions& opt);

/// Forward a stack of identical-shape layers.
[[nodiscard]] tensor::MatrixF encoder_stack_forward(
    core::ExecContext& ctx, const tensor::MatrixF& x,
    const std::vector<EncoderWeights>& layers, const EncoderOptions& opt);

/// TurboTransformer-style batched inference (§6 discussion): sequences of
/// possibly different lengths share one forward pass. Attention runs per
/// sample (its shape is per-sequence), but the linear transformations and
/// pointwise kernels run once over the stacked (Σ seq_i × d) activations,
/// amortizing weight loads and kernel launches — the throughput-side
/// trade E.T.'s latency-focused design can serve as a backend for.
/// opt.attn.seq_len is ignored; each sample uses its own length.
[[nodiscard]] std::vector<tensor::MatrixF> batched_encoder_forward(
    core::ExecContext& ctx, const std::vector<tensor::MatrixF>& batch,
    const EncoderWeights& w, const EncoderOptions& opt);

/// Build the EncoderOptions a given pipeline conventionally runs with
/// (precision, scale reordering, adaptive policy) for a model config.
[[nodiscard]] EncoderOptions options_for(Pipeline pipeline,
                                         const ModelConfig& model,
                                         std::size_t seq_len,
                                         bool causal_mask = false);

}  // namespace et::nn
