// Autoregressive generation over the inference stack: a decoder-only
// model (stack of causal encoder layers, GPT-style per §2.1) consuming
// one token per step with per-layer KV caches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/kv_cache.hpp"
#include "core/prefix_trie.hpp"
#include "nn/encoder.hpp"
#include "nn/model.hpp"

namespace et::nn {

/// Holds the per-layer KV caches and steps the stack one token at a time.
/// Prefill (`prime`) runs the prompt through token by token so the caches
/// and the step path share one code path (and one set of tests).
class GenerationSession {
 public:
  /// Constructed from the validated nn::Model handle — the session copies
  /// the handle (cheap: pointer + options + flags), so the caller's Model
  /// may be a temporary, but the layer vector the Model borrows must
  /// outlive the session. Each per-layer cache is sized to the layer's
  /// V-plane width (Model::v_width), so condensed and folded layouts
  /// allocate only what they cache.
  explicit GenerationSession(const Model& model);

  /// Feed one token's embedding (1 × d_model); returns the top-layer
  /// hidden state for that position (1 × d_model). Atomic under faults:
  /// if a kernel fails partway through the layer stack, every per-layer
  /// KV cache is rolled back to its pre-step length before the exception
  /// propagates, so the session stays consistent and resumable.
  [[nodiscard]] tensor::MatrixF step(core::ExecContext& ctx,
                                     const tensor::MatrixF& x_row);

  /// Feed a whole prompt (rows = tokens); returns the final position's
  /// hidden state.
  [[nodiscard]] tensor::MatrixF prime(core::ExecContext& ctx,
                                      const tensor::MatrixF& prompt);

  [[nodiscard]] const Model& model() const noexcept { return model_; }

  [[nodiscard]] std::size_t context_length() const noexcept {
    return caches_.empty() ? 0 : caches_[0].used();
  }
  [[nodiscard]] std::size_t max_context() const noexcept {
    return model_.max_context();
  }
  [[nodiscard]] bool at_capacity() const noexcept {
    return context_length() >= max_context();
  }

  void reset();

 private:
  [[nodiscard]] tensor::MatrixF step_layers(core::ExecContext& ctx,
                                            const tensor::MatrixF& x_row,
                                            numeric::Precision p);

  Model model_;
  std::vector<core::KVCache> caches_;  // one per layer
};

/// Why generate() stopped emitting tokens. The last three arise only
/// through the request-level serving runtime (serving::InferenceServer,
/// docs/serving.md), which finishes requests on behalf of a caller: an
/// explicit cancel, an exhausted queue-wait/end-to-end budget, or refused
/// admission at a full queue.
enum class StopReason {
  kMaxTokens,         ///< reached the requested token budget — the happy path
  kEos,               ///< the model emitted the end-of-sequence token
  kKvCacheFull,       ///< per-layer KV caches reached capacity
  kKernelFault,       ///< a kernel failed mid-step (injected or real)
  kCancelled,         ///< cancelled by the caller; emitted tokens are kept
  kDeadlineExceeded,  ///< queue-wait or end-to-end budget expired
  kRejected,          ///< refused admission (bounded queue full or shed)
  kPreemptionLimit,   ///< preempted more times than the server allows
};

/// Count of StopReason enumerators, for exhaustive iteration (per-reason
/// metrics counters, the round-trip regression test).
inline constexpr std::size_t kStopReasonCount = 8;

[[nodiscard]] constexpr std::string_view to_string(StopReason r) noexcept {
  switch (r) {
    case StopReason::kMaxTokens: return "max_tokens";
    case StopReason::kEos: return "eos";
    case StopReason::kKvCacheFull: return "kv_cache_full";
    case StopReason::kKernelFault: return "kernel_fault";
    case StopReason::kCancelled: return "cancelled";
    case StopReason::kDeadlineExceeded: return "deadline_exceeded";
    case StopReason::kRejected: return "rejected";
    case StopReason::kPreemptionLimit: return "preemption_limit";
  }
  return "?";
}

/// Tokens are vocabulary indices (>= 0); any negative eos_token disables
/// end-of-sequence detection.
inline constexpr std::int32_t kNoEosToken = -1;

/// Outcome of a generate() call. Tokens emitted before a fault or a full
/// cache are always preserved — running out of capacity mid-reply returns
/// the partial reply, it never throws it away.
struct GenerationResult {
  std::vector<std::int32_t> tokens;  ///< tokens emitted, in order
  StopReason stop_reason = StopReason::kMaxTokens;
  std::string fault_kernel;  ///< faulted kernel when stop_reason == kKernelFault
};

/// Maps a token id (and its absolute position) to its input embedding row
/// (1 × d_model) — embedding table + positional encoding in most callers.
using EmbedFn =
    std::function<tensor::MatrixF(std::int32_t token, std::size_t position)>;

/// Picks the next token from the top-layer hidden state (1 × d_model) —
/// greedy argmax over an LM head in most callers.
using SelectFn = std::function<std::int32_t(const tensor::MatrixF& hidden)>;

/// The sampling/limit fields every decode submit path shares. Both
/// nn::GenerationRequest (scheduler) and serving::Request extend this
/// struct, so the two request shapes cannot drift apart — one definition
/// of what a decode job IS, envelopes added per layer.
struct DecodeParams {
  std::int32_t first_token = 0;
  /// Optional multi-token prompt. Empty: the legacy single-token shape —
  /// `first_token` alone seeds decoding. Non-empty: overrides
  /// first_token; positions 0..n-2 prefill the KV caches (their hidden
  /// states are discarded, nothing is emitted for them) and position n-1
  /// decodes the first emission. The prompt is also what paged prefix
  /// sharing keys on (core::PrefixTrie, docs/serving.md).
  std::vector<std::int32_t> prompt_tokens;
  /// Prefix-sharing scope; core::kNoPrefixGroup (the default) never
  /// shares. Callers may put two requests in one group ONLY when their
  /// embed closures are bit-identical functions — token ids alone do not
  /// determine KV content, the embedding does.
  std::uint64_t prefix_group = core::kNoPrefixGroup;
  std::size_t max_new_tokens = 0;
  EmbedFn embed;
  SelectFn select;
  std::int32_t eos_token = kNoEosToken;

  /// The effective prompt: prompt_tokens, or the single first_token.
  [[nodiscard]] std::vector<std::int32_t> prompt() const {
    if (!prompt_tokens.empty()) return prompt_tokens;
    return {first_token};
  }
};

/// Autoregressive generation with graceful limits: feeds
/// `params.first_token`, then repeatedly selects and feeds the next
/// token, up to `max_new_tokens` emissions. KV-cache exhaustion and
/// per-step kernel faults are stop conditions, not errors: the result
/// carries everything generated so far plus the reason generation ended.
/// Only non-fault exceptions (e.g. a bad config) propagate. A
/// non-negative `eos_token` additionally stops (reason kEos) once that
/// token is emitted — the emission itself is kept in the result.
[[nodiscard]] GenerationResult generate(core::ExecContext& ctx,
                                        GenerationSession& session,
                                        const DecodeParams& params);

/// Field-by-field convenience spelling of the DecodeParams overload.
[[nodiscard]] GenerationResult generate(core::ExecContext& ctx,
                                        GenerationSession& session,
                                        std::int32_t first_token,
                                        std::size_t max_new_tokens,
                                        const EmbedFn& embed,
                                        const SelectFn& select,
                                        std::int32_t eos_token = kNoEosToken);

}  // namespace et::nn
