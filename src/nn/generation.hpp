// Autoregressive generation over the inference stack: a decoder-only
// model (stack of causal encoder layers, GPT-style per §2.1) consuming
// one token per step with per-layer KV caches.
#pragma once

#include "core/kv_cache.hpp"
#include "nn/encoder.hpp"

namespace et::nn {

/// Holds the per-layer KV caches and steps the stack one token at a time.
/// Prefill (`prime`) runs the prompt through token by token so the caches
/// and the step path share one code path (and one set of tests).
class GenerationSession {
 public:
  GenerationSession(const std::vector<EncoderWeights>* layers,
                    EncoderOptions opt, std::size_t max_context);

  /// Feed one token's embedding (1 × d_model); returns the top-layer
  /// hidden state for that position (1 × d_model).
  [[nodiscard]] tensor::MatrixF step(gpusim::Device& dev,
                                     const tensor::MatrixF& x_row);

  /// Feed a whole prompt (rows = tokens); returns the final position's
  /// hidden state.
  [[nodiscard]] tensor::MatrixF prime(gpusim::Device& dev,
                                      const tensor::MatrixF& prompt);

  [[nodiscard]] std::size_t context_length() const noexcept {
    return caches_.empty() ? 0 : caches_[0].used();
  }
  [[nodiscard]] std::size_t max_context() const noexcept { return max_ctx_; }

  void reset();

 private:
  const std::vector<EncoderWeights>* layers_;  // not owned
  EncoderOptions opt_;
  std::size_t max_ctx_;
  std::vector<core::KVCache> caches_;  // one per layer
};

}  // namespace et::nn
