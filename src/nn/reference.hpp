// Double-precision host reference for the encoder forward pass. This is
// the oracle the pipeline implementations are validated against; it never
// records device kernels.
#pragma once

#include "core/config.hpp"
#include "nn/encoder.hpp"
#include "tensor/matrix.hpp"

namespace et::nn {

/// Multi-head self-attention (no pruning, no precompute) in double.
[[nodiscard]] tensor::MatrixF reference_attention(
    const tensor::MatrixF& x, const core::AttentionWeights& w,
    const core::AttentionConfig& cfg);

/// Cross-attention in double: queries from x, keys/values from memory.
[[nodiscard]] tensor::MatrixF reference_cross_attention(
    const tensor::MatrixF& x, const tensor::MatrixF& memory,
    const core::AttentionWeights& w, const core::AttentionConfig& cfg);

/// Full encoder layer in double.
[[nodiscard]] tensor::MatrixF reference_encoder(const tensor::MatrixF& x,
                                                const EncoderWeights& w,
                                                const core::AttentionConfig& cfg);

}  // namespace et::nn
