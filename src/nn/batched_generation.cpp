#include "nn/batched_generation.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/attention_math.hpp"
#include "kernels/elementwise.hpp"
#include "kernels/gemm.hpp"
#include "kernels/linear.hpp"
#include "quant/quantize.hpp"

namespace et::nn {

namespace {

/// Per-sequence state threaded through one tick. `pre_used` is the
/// context length every layer's cache is rolled back to if this slot (or
/// the whole tick) has to be undone — the PR-1 step-atomicity invariant,
/// per slot.
struct TickSlot {
  enum class State { kRunning, kOk, kKernelFault, kKvCacheFull };

  std::size_t pool_slot = 0;
  std::size_t request_id = 0;
  std::vector<core::PagedKVCache>* caches = nullptr;
  std::size_t pre_used = 0;

  State state = State::kRunning;
  std::string fault_kernel;
  tensor::MatrixF hidden;  // 1 × d_model when state == kOk
};

// Cursor-only: PagedKVCache::truncate never frees a block, so this is
// safe from the parallel per-slot chunks AND the same-tick per-slot
// retry after a shared-kernel fault still finds its prepared block in
// the table. Storage reclamation happens at slot release.
void rollback(TickSlot& slot) {
  for (auto& cache : *slot.caches) cache.truncate(slot.pre_used);
  slot.hidden = tensor::MatrixF();
}

/// The input token for context position `pos`: a prompt position embeds
/// the prompt token, everything after embeds the emission stream (which
/// replay re-fills, so a resumed request derives identical inputs).
std::int32_t input_token(const GenerationRequest& req,
                         const std::vector<std::int32_t>& emitted,
                         std::size_t pos) {
  const std::vector<std::int32_t>& pt = req.prompt_tokens;
  const std::size_t n = pt.empty() ? 1 : pt.size();
  if (pos < n) return pt.empty() ? req.first_token : pt[pos];
  return emitted.at(pos - n);
}

/// One fused decode step for every sequence in `live` (rows(i) is
/// live[i]'s embedded input). The math mirrors GenerationSession's
/// step_layers + core::incremental_attention row for row — each shared
/// kernel is row-wise independent, so every sequence's output is
/// bit-identical to its sequential step. Under Model's kInt8 descriptor
/// every projection/FF GEMM swaps to quant::int8_linear, whose per-ROW
/// activation scales keep that row-wise independence exactly (a stacked
/// row quantizes as it would alone). Slot-attributed faults retire
/// only the owning slot (its caches rolled back, its row dropped); faults
/// in shared kernels roll back every live slot and propagate to the
/// caller, which degrades the tick to per-slot stepping.
void fused_step(core::ExecContext& ctx, const Model& model,
                std::vector<TickSlot*> live, tensor::MatrixF rows) {
  gpusim::Device& dev = ctx.device();
  const std::vector<EncoderWeights>& layers = model.layers();
  const EncoderOptions& opt = model.options();
  const bool int8 = model.quantized();
  const auto p = opt.attn.precision;
  const std::size_t d = opt.attn.d_model;
  const std::size_t sb = numeric::storage_bytes(p);
  kernels::LinearOptions lopt;
  lopt.precision = p;

  const auto rollback_all = [&live]() {
    for (TickSlot* slot : live) rollback(*slot);
  };

  tensor::MatrixF h = std::move(rows);
  try {
    for (std::size_t l = 0; l < layers.size(); ++l) {
      const EncoderWeights& w = layers[l];

      // Shared: the whole batch's q/k/v projections, in the layout the
      // caches store (the same three-way V split as
      // core::incremental_attention; docs/attention.md "Weight layouts in
      // the decode path"). Dense weights fuse into ONE batched GEMM (the
      // A strips — the stacked hidden rows — staged once for all panels);
      // under the W_VO fold the third panel is W_VO itself, so the
      // batched projection directly emits the condensed m rows. Pruned
      // formats keep their specialized kernels, still amortized across
      // the batch by stacking.
      tensor::MatrixF q, k_new, v_new;
      const core::PrecomputedVO* vo =
          w.attn.has_precomputed() ? &w.attn.vo : nullptr;
      std::vector<std::uint32_t> v_kept;
      const QuantizedLayer* ql = int8 ? &model.quantized_layer(l) : nullptr;
      const auto* dq = std::get_if<sparse::DenseWeight>(&w.attn.wq);
      const auto* dk = std::get_if<sparse::DenseWeight>(&w.attn.wk);
      const auto* dv = std::get_if<sparse::DenseWeight>(&w.attn.wv);
      if (int8) {
        // INT8 keeps the same three-way V split, fused into ONE launch
        // like the dense batched projection (decode is launch-bound —
        // three separate launches would hand the fp16 path back its
        // win). The fold's metadata (kept/heads) still reads the fp
        // W_VO while the GEMM operand is the quantized one.
        auto qkv = quant::int8_batched_linear(
            ctx, h, {&ql->wq, &ql->wk, vo != nullptr ? &ql->vo : &ql->wv},
            "gen_qkv_int8");
        q = std::move(qkv[0]);
        k_new = std::move(qkv[1]);
        v_new = std::move(qkv[2]);
      } else if (vo != nullptr && dq != nullptr && dk != nullptr) {
        auto qkm = kernels::batched_gemm_nt(
            ctx, h, {&dq->matrix(), &dk->matrix(), &vo->weight}, p, nullptr,
            "gen_qkv_batched");
        q = std::move(qkm[0]);
        k_new = std::move(qkm[1]);
        v_new = std::move(qkm[2]);
      } else if (vo != nullptr) {
        q = kernels::linear(ctx, h, w.attn.wq, lopt, "gen_q_linear").y;
        k_new = kernels::linear(ctx, h, w.attn.wk, lopt, "gen_k_linear").y;
        v_new = kernels::gemm_nt(ctx, h, vo->weight, p, nullptr,
                                 "gen_vo_linear");
      } else if (w.attn.v_condensable(opt.attn.num_heads)) {
        q = kernels::linear(ctx, h, w.attn.wq, lopt, "gen_q_linear").y;
        k_new = kernels::linear(ctx, h, w.attn.wk, lopt, "gen_k_linear").y;
        kernels::LinearOptions vopt = lopt;
        vopt.scatter_row_pruned_output = false;
        auto res = kernels::linear(ctx, h, w.attn.wv, vopt, "gen_v_linear");
        v_new = std::move(res.y);
        v_kept = std::move(res.nonzero_cols);
      } else if (dq != nullptr && dk != nullptr && dv != nullptr) {
        auto qkv = kernels::batched_gemm_nt(
            ctx, h, {&dq->matrix(), &dk->matrix(), &dv->matrix()}, p, nullptr,
            "gen_qkv_batched");
        q = std::move(qkv[0]);
        k_new = std::move(qkv[1]);
        v_new = std::move(qkv[2]);
      } else {
        q = kernels::linear(ctx, h, w.attn.wq, lopt, "gen_q_linear").y;
        k_new = kernels::linear(ctx, h, w.attn.wk, lopt, "gen_k_linear").y;
        v_new = kernels::linear(ctx, h, w.attn.wv, lopt, "gen_v_linear").y;
      }
      const std::vector<std::uint32_t>* v_kept_ptr =
          int8 ? (ql->v_kept.empty() ? nullptr : &ql->v_kept)
               : (v_kept.empty() ? nullptr : &v_kept);
      const std::size_t vw = v_new.cols();  // V-plane width actually cached

      // Per slot: append this token's K/V row and attend over the slot's
      // own cache — a 1-row OTF instance per sequence, identical to
      // core::incremental_attention. Launches here carry the slot id, so
      // a fault is attributable: only the owning slot retires. Slots are
      // independent (own cache, own output row, own dead flag), so this
      // loop runs one slot per parallel chunk; slot-attributed launches
      // land in per-chunk sinks that merge back in slot order, keeping
      // the device log bit-identical to the serial tick. Faults the body
      // handles (KernelFault, length_error) never escape a chunk; a
      // SharedMemOverflow does, and surfaces after the merge exactly
      // where the serial loop would have thrown it.
      tensor::MatrixF z(live.size(), d);
      std::vector<char> dead(live.size(), 0);  // char: written concurrently
      ctx.parallel_for(
          live.size(),
          [&](std::size_t b) {
            TickSlot& slot = *live[b];
            core::PagedKVCache& cache = (*slot.caches)[l];
            gpusim::SlotScope scope(dev, static_cast<int>(slot.pool_slot));
            try {
              cache.append(k_new.row(b), v_new.row(b));
              const std::size_t ctx_len = cache.used();
              {
                auto launch = dev.launch(
                    {.name = "incremental_otf_attention",
                     .ctas = opt.attn.num_heads,
                     .shared_bytes_per_cta =
                         opt.attn.d_k() * numeric::accumulator_bytes(p) +
                         ctx_len * numeric::accumulator_bytes(p),
                     .pattern = gpusim::AccessPattern::kTiled});
                launch.load_bytes(d * sb);
                // Cached K/V rows: one byte per element plus two FP32
                // scales per row under an INT8 pool — the traffic the
                // halved-footprint cache actually moves.
                const std::size_t kv_row_bytes =
                    cache.precision() == core::KvPrecision::kInt8
                        ? (d + vw) + 2 * sizeof(float)
                        : (d + vw) * sb;
                launch.load_bytes(ctx_len * kv_row_bytes);
                launch.store_bytes(d * sb);
                const std::uint64_t flops = 2ull * ctx_len * (d + vw);
                if (p == numeric::Precision::kFp32) {
                  launch.fp_ops(flops + 5ull * ctx_len * opt.attn.num_heads);
                } else {
                  launch.tensor_ops(flops);
                  launch.fp_ops(5ull * ctx_len * opt.attn.num_heads);
                }
              }
              if (!dev.traffic_only()) {
                core::AttentionConfig step_cfg = opt.attn;
                step_cfg.seq_len = 1;
                step_cfg.causal_mask = false;
                const tensor::MatrixF zb = core::detail::attention_math(
                    tensor::slice_rows(q, b, 1), cache.k_prefix(),
                    cache.v_prefix(), vo, v_kept_ptr, step_cfg);
                for (std::size_t c = 0; c < d; ++c) z(b, c) = zb(0, c);
              }
            } catch (const gpusim::KernelFault& f) {
              rollback(slot);
              slot.state = TickSlot::State::kKernelFault;
              slot.fault_kernel = f.kernel();
              dev.note_fallback({"batched_decode", "retire_slot", f.kernel(),
                                 std::string(to_string(f.cause())),
                                 static_cast<int>(slot.pool_slot)});
              dead[b] = 1;
            } catch (const std::length_error&) {
              // A cache filled behind the tick's capacity pre-check;
              // degrade exactly like generate()'s defensive
              // kv_cache_full stop.
              rollback(slot);
              slot.state = TickSlot::State::kKvCacheFull;
              dead[b] = 1;
            }
          },
          /*grain=*/1);
      bool any_dead = false;
      for (const char flag : dead) any_dead = any_dead || flag != 0;
      if (any_dead) {
        std::vector<TickSlot*> survivors;
        std::vector<std::size_t> keep;
        for (std::size_t b = 0; b < live.size(); ++b) {
          if (!dead[b]) {
            survivors.push_back(live[b]);
            keep.push_back(b);
          }
        }
        live = std::move(survivors);
        if (live.empty()) return;
        tensor::MatrixF h2(live.size(), d), z2(live.size(), d);
        for (std::size_t b = 0; b < keep.size(); ++b) {
          for (std::size_t c = 0; c < d; ++c) {
            h2(b, c) = h(keep[b], c);
            z2(b, c) = z(keep[b], c);
          }
        }
        h = std::move(h2);
        z = std::move(z2);
      }

      // Shared: output projection (already folded into the cached rows
      // under W_VO), residual+LN and the MLP over the stacked survivors —
      // one launch each instead of one per sequence.
      tensor::MatrixF attn =
          vo != nullptr
              ? std::move(z)
              : (int8
                     ? quant::int8_linear(ctx, z, ql->wo, "gen_out_int8")
                     : kernels::linear(ctx, z, w.attn.wo, lopt,
                                       "gen_out_linear")
                           .y);
      kernels::fused_residual_layernorm(dev, attn, h, w.ln1_gamma, w.ln1_beta,
                                        p, "gen_residual_layernorm1");
      tensor::MatrixF m =
          int8 ? quant::int8_linear(ctx, attn, ql->ff1, "gen_ff1_int8")
               : kernels::linear(ctx, attn, w.w_ff1, lopt, "gen_ff1").y;
      if (!dev.traffic_only()) {
        constexpr float kSqrt2OverPi = 0.7978845608028654f;
        for (std::size_t r = 0; r < m.rows(); ++r) {
          for (std::size_t c = 0; c < m.cols(); ++c) {
            const float v = m(r, c) + w.b_ff1[c];
            const float inner = kSqrt2OverPi * (v + 0.044715f * v * v * v);
            m(r, c) = numeric::round_to_storage(
                p, 0.5f * v * (1.0f + std::tanh(inner)));
          }
        }
      }
      tensor::MatrixF y =
          int8 ? quant::int8_linear(ctx, m, ql->ff2, "gen_ff2_int8")
               : kernels::linear(ctx, m, w.w_ff2, lopt, "gen_ff2").y;
      if (!dev.traffic_only()) {
        for (std::size_t r = 0; r < y.rows(); ++r) {
          for (std::size_t c = 0; c < y.cols(); ++c) {
            y(r, c) = numeric::round_to_storage(p, y(r, c) + w.b_ff2[c]);
          }
        }
      }
      kernels::fused_residual_layernorm(dev, y, attn, w.ln2_gamma, w.ln2_beta,
                                        p, "gen_residual_layernorm2");
      h = std::move(y);
    }
  } catch (...) {
    // A shared kernel failed: no slot can be blamed, so no slot may keep
    // this tick's partial work. Roll back everything and let the caller
    // degrade to per-slot stepping.
    rollback_all();
    throw;
  }

  for (std::size_t b = 0; b < live.size(); ++b) {
    live[b]->state = TickSlot::State::kOk;
    live[b]->hidden = tensor::slice_rows(h, b, 1);
  }
}

}  // namespace

namespace {
std::size_t checked_batch(std::size_t max_batch) {
  // Thrown before pool_ is constructed so the zero-batch error keeps the
  // scheduler's own message, not the pool's.
  if (max_batch == 0) {
    throw std::invalid_argument(
        "BatchedGenerationScheduler: max_batch must be nonzero");
  }
  return max_batch;
}
}  // namespace

BatchedGenerationScheduler::BatchedGenerationScheduler(const Model& model,
                                                       std::size_t max_batch,
                                                       core::PagedKVOptions kv)
    : model_(model),
      pool_(checked_batch(max_batch), model_.max_context(), model_.k_width(),
            model_.v_widths(), kv),
      slots_(max_batch) {}

std::size_t BatchedGenerationScheduler::submit(GenerationRequest req) {
  const std::size_t id = requests_.size();
  requests_.push_back(std::move(req));
  results_.emplace_back();
  completed_.push_back(false);
  if (requests_.back().max_new_tokens == 0) {
    // Nothing to decode — mirror generate()'s empty happy path.
    results_.back().stop_reason = StopReason::kMaxTokens;
    completed_.back() = true;
  } else {
    queue_.push_back(id);
  }
  return id;
}

bool BatchedGenerationScheduler::cancel(std::size_t id, StopReason reason) {
  if (completed_.at(id)) return false;
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (*it == id) {
      queue_.erase(it);
      results_[id].stop_reason = reason;
      completed_[id] = true;
      return true;
    }
  }
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    if (slots_[s].has_value() && slots_[s]->request_id == id) {
      retire(s, reason);
      return true;
    }
  }
  // Every unfinished request is either queued or in a slot.
  assert(false);
  return false;
}

std::size_t BatchedGenerationScheduler::active() const noexcept {
  std::size_t n = 0;
  for (const auto& s : slots_) n += s.has_value() ? 1 : 0;
  return n;
}

const GenerationResult& BatchedGenerationScheduler::result(
    std::size_t id) const {
  if (!completed_.at(id)) {
    throw std::logic_error("BatchedGenerationScheduler::result: request " +
                           std::to_string(id) + " has not finished");
  }
  return results_[id];
}

void BatchedGenerationScheduler::admit(std::size_t request_id) {
  const GenerationRequest& req = requests_[request_id];
  // Prompt-aware acquisition: the pool's prefix trie may seed the slot's
  // block table with another request's resident prompt blocks (refcounts
  // bumped; appends below the shared frontier skip the write).
  const std::vector<std::int32_t> prompt = req.prompt();
  const std::size_t slot = pool_.acquire(req.prefix_group, prompt);
  slots_[slot] = ActiveSlot{request_id};
}

void BatchedGenerationScheduler::retire(std::size_t pool_slot,
                                        StopReason reason) {
  const std::size_t id = slots_[pool_slot]->request_id;
  results_[id].stop_reason = reason;
  completed_[id] = true;
  slots_[pool_slot].reset();
  pool_.release(pool_slot);
}

void BatchedGenerationScheduler::tick(core::ExecContext& ctx) {
  gpusim::Device& dev = ctx.device();
  ++ticks_;

  // Serial trie flush: advertise every prompt block the PREVIOUS tick's
  // parallel appends completed, before this tick's admissions look the
  // prefix up. Trie writes therefore never race the decode section.
  pool_.flush_registrations();

  // Admission: backfill every free slot from the FIFO queue.
  while (pool_.has_free() && !queue_.empty()) {
    admit(queue_.front());
    queue_.pop_front();
  }

  // Capacity pre-check — the same at_capacity() stop generate() takes
  // before a step, applied per slot so one exhausted sequence never
  // blocks the rest of the batch. prepare_append is the paged half of
  // it, run SERIALLY in slot order: it allocates (or CoW-splits) the
  // block this tick's append lands in, so block exhaustion retires the
  // slot kv_cache_full here, deterministically, and the parallel appends
  // below are pure row writes. A retirement frees blocks that later
  // slots' prepares may immediately reuse — still deterministic, the
  // loop is serial.
  std::vector<TickSlot> tick_slots;
  tick_slots.reserve(slots_.size());
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    if (!slots_[s].has_value()) continue;
    core::PagedKVSlot& kv_slot = pool_.slot(s);
    if (kv_slot.tokens() >= model_.max_context()) {
      retire(s, StopReason::kKvCacheFull);
      continue;
    }
    if (!kv_slot.prepare_append()) {
      retire(s, StopReason::kKvCacheFull);
      continue;
    }
    TickSlot ts;
    ts.pool_slot = s;
    ts.request_id = slots_[s]->request_id;
    ts.caches = &pool_.caches(s);
    ts.pre_used = kv_slot.tokens();
    tick_slots.push_back(std::move(ts));
  }
  if (tick_slots.empty()) return;

  // Embed every sequence's input at its own context position: prompt
  // tokens first (prefill and decode share this one code path), then the
  // emission stream.
  const std::size_t d = model_.d_model();
  tensor::MatrixF rows(tick_slots.size(), d);
  for (std::size_t i = 0; i < tick_slots.size(); ++i) {
    const TickSlot& ts = tick_slots[i];
    const GenerationRequest& req = requests_[ts.request_id];
    const std::int32_t token =
        input_token(req, results_[ts.request_id].tokens, ts.pre_used);
    const tensor::MatrixF row = req.embed(token, ts.pre_used);
    assert(row.rows() == 1 && row.cols() == d);
    for (std::size_t c = 0; c < d; ++c) rows(i, c) = row(0, c);
  }

  bool per_slot = !core::use_batched_decode(model_.options().adaptive,
                                            tick_slots.size());
  if (!per_slot) {
    ++batched_ticks_;
    std::vector<TickSlot*> live;
    live.reserve(tick_slots.size());
    for (auto& ts : tick_slots) live.push_back(&ts);
    try {
      fused_step(ctx, model_, std::move(live), rows);
    } catch (const gpusim::KernelFault& f) {
      // Shared-kernel fault: the aborted batched attempt has no effect
      // (fused_step rolled every slot back). Degrade this tick to
      // per-slot stepping so any persistent fault becomes attributable.
      for (auto& ts : tick_slots) {
        ts.state = TickSlot::State::kRunning;
        ts.fault_kernel.clear();
      }
      dev.note_fallback({"batched_decode", "per_slot_decode", f.kernel(),
                         std::string(to_string(f.cause())), gpusim::kNoSlot});
      ++fallback_ticks_;
      per_slot = true;
    }
  }
  if (per_slot) {
    for (std::size_t i = 0; i < tick_slots.size(); ++i) {
      TickSlot& ts = tick_slots[i];
      if (ts.state != TickSlot::State::kRunning) continue;
      try {
        fused_step(ctx, model_, {&ts}, tensor::slice_rows(rows, i, 1));
      } catch (const gpusim::KernelFault& f) {
        ts.state = TickSlot::State::kKernelFault;
        ts.fault_kernel = f.kernel();
      }
    }
  }

  // Retire / advance.
  for (TickSlot& ts : tick_slots) {
    switch (ts.state) {
      case TickSlot::State::kOk: {
        auto& res = results_[ts.request_id];
        const GenerationRequest& req = requests_[ts.request_id];
        // Prefill positions (every prompt token but the last) emit
        // nothing: the hidden state is discarded and the slot just
        // advances, exactly like nn::generate's prefill loop.
        const std::size_t prompt_len =
            req.prompt_tokens.empty() ? 1 : req.prompt_tokens.size();
        if (ts.pre_used + 1 < prompt_len) break;
        // Recompute-resume replay: while tokens from a preempted/faulted
        // earlier run remain, the tick rebuilt their KV rows and the
        // outcome is already known — take it verbatim instead of calling
        // select(), whose side effects (streaming hashes, logging) must
        // fire once per token across the request's whole life.
        ActiveSlot& as = *slots_[ts.pool_slot];
        const bool replaying = as.replayed < req.resume_tokens.size();
        const std::int32_t token = replaying
                                       ? req.resume_tokens[as.replayed++]
                                       : req.select(ts.hidden);
        res.tokens.push_back(token);
        if (req.eos_token >= 0 && token == req.eos_token) {
          retire(ts.pool_slot, StopReason::kEos);
        } else if (res.tokens.size() >= req.max_new_tokens) {
          retire(ts.pool_slot, StopReason::kMaxTokens);
        }
        break;
      }
      case TickSlot::State::kKernelFault:
        results_[ts.request_id].fault_kernel = ts.fault_kernel;
        retire(ts.pool_slot, StopReason::kKernelFault);
        break;
      case TickSlot::State::kKvCacheFull:
        retire(ts.pool_slot, StopReason::kKvCacheFull);
        break;
      case TickSlot::State::kRunning:
        // Unreachable: every path above resolves the slot.
        assert(false);
        break;
    }
  }
}

std::vector<GenerationResult> BatchedGenerationScheduler::run(
    core::ExecContext& ctx) {
  while (!idle()) tick(ctx);
  return results_;
}

}  // namespace et::nn
