#include "nn/generation.hpp"

#include <cassert>
#include <cmath>

#include "kernels/elementwise.hpp"
#include "kernels/linear.hpp"

namespace et::nn {

GenerationSession::GenerationSession(const Model& model) : model_(model) {
  caches_.reserve(model_.num_layers());
  for (std::size_t l = 0; l < model_.num_layers(); ++l) {
    caches_.emplace_back(model_.max_context(), model_.k_width(),
                         model_.v_width(l));
  }
}

tensor::MatrixF GenerationSession::step(core::ExecContext& ctx,
                                        const tensor::MatrixF& x_row) {
  assert(x_row.rows() == 1 && x_row.cols() == model_.d_model());
  const auto p = model_.options().attn.precision;

  // A kernel fault partway through the stack would leave earlier layers'
  // caches one row longer than later ones. Roll every cache back to its
  // pre-step length on any exception so a failed step has no effect.
  const std::size_t pre_step = context_length();
  const auto rollback = [&]() noexcept {
    for (auto& cache : caches_) cache.truncate(pre_step);
  };
  try {
    return step_layers(ctx, x_row, p);
  } catch (...) {
    rollback();
    throw;
  }
}

tensor::MatrixF GenerationSession::step_layers(core::ExecContext& ctx,
                                               const tensor::MatrixF& x_row,
                                               numeric::Precision p) {
  gpusim::Device& dev = ctx.device();
  const std::vector<EncoderWeights>& layers = model_.layers();
  const EncoderOptions& opt = model_.options();
  tensor::MatrixF h = x_row;
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const EncoderWeights& w = layers[l];
    tensor::MatrixF attn =
        core::incremental_attention(ctx, h, w.attn, opt.attn, caches_[l]);
    kernels::fused_residual_layernorm(dev, attn, h, w.ln1_gamma, w.ln1_beta,
                                      p, "gen_residual_layernorm1");

    kernels::LinearOptions lopt;
    lopt.precision = p;
    tensor::MatrixF m = kernels::linear(ctx, attn, w.w_ff1, lopt,
                                        "gen_ff1").y;
    if (!dev.traffic_only()) {
      constexpr float kSqrt2OverPi = 0.7978845608028654f;
      for (std::size_t c = 0; c < m.cols(); ++c) {
        const float v = m(0, c) + w.b_ff1[c];
        const float inner = kSqrt2OverPi * (v + 0.044715f * v * v * v);
        m(0, c) = numeric::round_to_storage(
            p, 0.5f * v * (1.0f + std::tanh(inner)));
      }
    }
    tensor::MatrixF y = kernels::linear(ctx, m, w.w_ff2, lopt, "gen_ff2").y;
    if (!dev.traffic_only()) {
      for (std::size_t c = 0; c < y.cols(); ++c) {
        y(0, c) = numeric::round_to_storage(p, y(0, c) + w.b_ff2[c]);
      }
    }
    kernels::fused_residual_layernorm(dev, y, attn, w.ln2_gamma, w.ln2_beta,
                                      p, "gen_residual_layernorm2");
    h = std::move(y);
  }
  return h;
}

tensor::MatrixF GenerationSession::prime(core::ExecContext& ctx,
                                         const tensor::MatrixF& prompt) {
  tensor::MatrixF last;
  for (std::size_t t = 0; t < prompt.rows(); ++t) {
    tensor::MatrixF row(1, prompt.cols());
    for (std::size_t c = 0; c < prompt.cols(); ++c) row(0, c) = prompt(t, c);
    last = step(ctx, row);
  }
  return last;
}

void GenerationSession::reset() {
  for (auto& cache : caches_) cache.reset();
}

GenerationResult generate(core::ExecContext& ctx, GenerationSession& session,
                          const DecodeParams& params) {
  GenerationResult result;
  if (params.max_new_tokens == 0) {
    result.stop_reason = StopReason::kMaxTokens;
    return result;
  }
  const std::vector<std::int32_t> prompt = params.prompt();
  // Prefill: positions 0..n-2 populate the KV caches and emit nothing;
  // their hidden states are discarded. Capacity and fault stops degrade
  // exactly like the decode loop's — the (empty) partial reply is kept.
  for (std::size_t t = 0; t + 1 < prompt.size(); ++t) {
    if (session.at_capacity()) {
      result.stop_reason = StopReason::kKvCacheFull;
      return result;
    }
    try {
      (void)session.step(ctx,
                         params.embed(prompt[t], session.context_length()));
    } catch (const gpusim::KernelFault& f) {
      result.stop_reason = StopReason::kKernelFault;
      result.fault_kernel = f.kernel();
      return result;
    } catch (const std::length_error&) {
      result.stop_reason = StopReason::kKvCacheFull;
      return result;
    }
  }
  std::int32_t token = prompt.back();
  for (std::size_t t = 0; t < params.max_new_tokens; ++t) {
    if (session.at_capacity()) {
      result.stop_reason = StopReason::kKvCacheFull;
      return result;
    }
    tensor::MatrixF h;
    try {
      h = session.step(ctx, params.embed(token, session.context_length()));
    } catch (const gpusim::KernelFault& f) {
      result.stop_reason = StopReason::kKernelFault;
      result.fault_kernel = f.kernel();
      return result;
    } catch (const std::length_error&) {
      // Defensive: a cache filled behind our back (shared caches, races in
      // future batched paths) must degrade exactly like the pre-checked
      // capacity stop, never abort generation.
      result.stop_reason = StopReason::kKvCacheFull;
      return result;
    }
    token = params.select(h);
    result.tokens.push_back(token);
    if (params.eos_token >= 0 && token == params.eos_token) {
      result.stop_reason = StopReason::kEos;
      return result;
    }
  }
  result.stop_reason = StopReason::kMaxTokens;
  return result;
}

GenerationResult generate(core::ExecContext& ctx, GenerationSession& session,
                          std::int32_t first_token,
                          std::size_t max_new_tokens, const EmbedFn& embed,
                          const SelectFn& select, std::int32_t eos_token) {
  DecodeParams params;
  params.first_token = first_token;
  params.max_new_tokens = max_new_tokens;
  params.embed = embed;
  params.select = select;
  params.eos_token = eos_token;
  return generate(ctx, session, params);
}

}  // namespace et::nn
