#include "nn/generation.hpp"

#include <cassert>
#include <cmath>

#include "kernels/elementwise.hpp"
#include "kernels/linear.hpp"

namespace et::nn {

GenerationSession::GenerationSession(const std::vector<EncoderWeights>* layers,
                                     EncoderOptions opt,
                                     std::size_t max_context)
    : layers_(layers), opt_(opt), max_ctx_(max_context) {
  assert(layers_ != nullptr);
  caches_.reserve(layers_->size());
  for (std::size_t l = 0; l < layers_->size(); ++l) {
    caches_.emplace_back(max_context, opt_.attn.d_model);
  }
}

tensor::MatrixF GenerationSession::step(core::ExecContext& ctx,
                                        const tensor::MatrixF& x_row) {
  assert(x_row.rows() == 1 && x_row.cols() == opt_.attn.d_model);
  const auto p = opt_.attn.precision;

  // A kernel fault partway through the stack would leave earlier layers'
  // caches one row longer than later ones. Roll every cache back to its
  // pre-step length on any exception so a failed step has no effect.
  const std::size_t pre_step = context_length();
  const auto rollback = [&]() noexcept {
    for (auto& cache : caches_) cache.truncate(pre_step);
  };
  try {
    return step_layers(ctx, x_row, p);
  } catch (...) {
    rollback();
    throw;
  }
}

tensor::MatrixF GenerationSession::step_layers(core::ExecContext& ctx,
                                               const tensor::MatrixF& x_row,
                                               numeric::Precision p) {
  gpusim::Device& dev = ctx.device();
  tensor::MatrixF h = x_row;
  for (std::size_t l = 0; l < layers_->size(); ++l) {
    const EncoderWeights& w = (*layers_)[l];
    tensor::MatrixF attn =
        core::incremental_attention(ctx, h, w.attn, opt_.attn, caches_[l]);
    kernels::fused_residual_layernorm(dev, attn, h, w.ln1_gamma, w.ln1_beta,
                                      p, "gen_residual_layernorm1");

    kernels::LinearOptions lopt;
    lopt.precision = p;
    tensor::MatrixF m = kernels::linear(ctx, attn, w.w_ff1, lopt,
                                        "gen_ff1").y;
    if (!dev.traffic_only()) {
      constexpr float kSqrt2OverPi = 0.7978845608028654f;
      for (std::size_t c = 0; c < m.cols(); ++c) {
        const float v = m(0, c) + w.b_ff1[c];
        const float inner = kSqrt2OverPi * (v + 0.044715f * v * v * v);
        m(0, c) = numeric::round_to_storage(
            p, 0.5f * v * (1.0f + std::tanh(inner)));
      }
    }
    tensor::MatrixF y = kernels::linear(ctx, m, w.w_ff2, lopt, "gen_ff2").y;
    if (!dev.traffic_only()) {
      for (std::size_t c = 0; c < y.cols(); ++c) {
        y(0, c) = numeric::round_to_storage(p, y(0, c) + w.b_ff2[c]);
      }
    }
    kernels::fused_residual_layernorm(dev, y, attn, w.ln2_gamma, w.ln2_beta,
                                      p, "gen_residual_layernorm2");
    h = std::move(y);
  }
  return h;
}

tensor::MatrixF GenerationSession::prime(core::ExecContext& ctx,
                                         const tensor::MatrixF& prompt) {
  tensor::MatrixF last;
  for (std::size_t t = 0; t < prompt.rows(); ++t) {
    tensor::MatrixF row(1, prompt.cols());
    for (std::size_t c = 0; c < prompt.cols(); ++c) row(0, c) = prompt(t, c);
    last = step(ctx, row);
  }
  return last;
}

tensor::MatrixF GenerationSession::step(gpusim::Device& dev,
                                        const tensor::MatrixF& x_row) {
  core::ExecContext ctx(dev);
  return step(ctx, x_row);
}

tensor::MatrixF GenerationSession::prime(gpusim::Device& dev,
                                         const tensor::MatrixF& prompt) {
  core::ExecContext ctx(dev);
  return prime(ctx, prompt);
}

void GenerationSession::reset() {
  for (auto& cache : caches_) cache.reset();
}

GenerationResult generate(core::ExecContext& ctx, GenerationSession& session,
                          std::int32_t first_token,
                          std::size_t max_new_tokens, const EmbedFn& embed,
                          const SelectFn& select, std::int32_t eos_token) {
  GenerationResult result;
  std::int32_t token = first_token;
  for (std::size_t t = 0; t < max_new_tokens; ++t) {
    if (session.at_capacity()) {
      result.stop_reason = StopReason::kKvCacheFull;
      return result;
    }
    tensor::MatrixF h;
    try {
      h = session.step(ctx, embed(token, session.context_length()));
    } catch (const gpusim::KernelFault& f) {
      result.stop_reason = StopReason::kKernelFault;
      result.fault_kernel = f.kernel();
      return result;
    } catch (const std::length_error&) {
      // Defensive: a cache filled behind our back (shared caches, races in
      // future batched paths) must degrade exactly like the pre-checked
      // capacity stop, never abort generation.
      result.stop_reason = StopReason::kKvCacheFull;
      return result;
    }
    token = select(h);
    result.tokens.push_back(token);
    if (eos_token >= 0 && token == eos_token) {
      result.stop_reason = StopReason::kEos;
      return result;
    }
  }
  result.stop_reason = StopReason::kMaxTokens;
  return result;
}

GenerationResult generate(gpusim::Device& dev, GenerationSession& session,
                          std::int32_t first_token,
                          std::size_t max_new_tokens, const EmbedFn& embed,
                          const SelectFn& select, std::int32_t eos_token) {
  core::ExecContext ctx(dev);
  return generate(ctx, session, first_token, max_new_tokens, embed, select,
                  eos_token);
}

}  // namespace et::nn
