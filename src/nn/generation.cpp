#include "nn/generation.hpp"

#include <cassert>
#include <cmath>

#include "core/kv_cache.hpp"
#include "kernels/elementwise.hpp"
#include "kernels/linear.hpp"
#include "quant/quantize.hpp"

namespace et::nn {

GenerationSession::GenerationSession(const Model& model) : model_(model) {
  caches_.reserve(model_.num_layers());
  for (std::size_t l = 0; l < model_.num_layers(); ++l) {
    caches_.emplace_back(model_.max_context(), model_.k_width(),
                         model_.v_width(l));
  }
}

tensor::MatrixF GenerationSession::step(core::ExecContext& ctx,
                                        const tensor::MatrixF& x_row) {
  assert(x_row.rows() == 1 && x_row.cols() == model_.d_model());
  const auto p = model_.options().attn.precision;

  // A kernel fault partway through the stack would leave earlier layers'
  // caches one row longer than later ones. Roll every cache back to its
  // pre-step length on any exception so a failed step has no effect.
  const std::size_t pre_step = context_length();
  const auto rollback = [&]() noexcept {
    for (auto& cache : caches_) cache.truncate(pre_step);
  };
  try {
    return step_layers(ctx, x_row, p);
  } catch (...) {
    rollback();
    throw;
  }
}

tensor::MatrixF GenerationSession::step_layers(core::ExecContext& ctx,
                                               const tensor::MatrixF& x_row,
                                               numeric::Precision p) {
  gpusim::Device& dev = ctx.device();
  const std::vector<EncoderWeights>& layers = model_.layers();
  const EncoderOptions& opt = model_.options();
  const bool int8 = model_.quantized();
  tensor::MatrixF h = x_row;
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const EncoderWeights& w = layers[l];
    const QuantizedLayer* ql = int8 ? &model_.quantized_layer(l) : nullptr;
    tensor::MatrixF attn;
    if (int8) {
      // INT8 swaps every projection GEMM; the attention step itself
      // (append + 1-row OTF launch + softmax math) is the shared fp32
      // core::incremental_attention_step — quantization never touches
      // the score math, only the operands feeding it.
      tensor::MatrixF q = quant::int8_linear(ctx, h, ql->wq, "gen_q_int8");
      tensor::MatrixF k_new =
          quant::int8_linear(ctx, h, ql->wk, "gen_k_int8");
      const core::PrecomputedVO* vo = nullptr;
      tensor::MatrixF v_new;
      if (w.attn.has_precomputed()) {
        vo = &w.attn.vo;  // metadata (kept/heads) still reads the fp fold
        v_new = quant::int8_linear(ctx, h, ql->vo, "gen_vo_int8");
      } else {
        v_new = quant::int8_linear(ctx, h, ql->wv, "gen_v_int8");
      }
      tensor::MatrixF z = core::incremental_attention_step(
          ctx, q, k_new, v_new, vo,
          ql->v_kept.empty() ? nullptr : &ql->v_kept, opt.attn, caches_[l]);
      attn = (vo != nullptr)
                 ? std::move(z)
                 : quant::int8_linear(ctx, z, ql->wo, "gen_out_int8");
    } else {
      attn = core::incremental_attention(ctx, h, w.attn, opt.attn,
                                         caches_[l]);
    }
    kernels::fused_residual_layernorm(dev, attn, h, w.ln1_gamma, w.ln1_beta,
                                      p, "gen_residual_layernorm1");

    kernels::LinearOptions lopt;
    lopt.precision = p;
    tensor::MatrixF m =
        int8 ? quant::int8_linear(ctx, attn, ql->ff1, "gen_ff1_int8")
             : kernels::linear(ctx, attn, w.w_ff1, lopt, "gen_ff1").y;
    if (!dev.traffic_only()) {
      constexpr float kSqrt2OverPi = 0.7978845608028654f;
      for (std::size_t c = 0; c < m.cols(); ++c) {
        const float v = m(0, c) + w.b_ff1[c];
        const float inner = kSqrt2OverPi * (v + 0.044715f * v * v * v);
        m(0, c) = numeric::round_to_storage(
            p, 0.5f * v * (1.0f + std::tanh(inner)));
      }
    }
    tensor::MatrixF y =
        int8 ? quant::int8_linear(ctx, m, ql->ff2, "gen_ff2_int8")
             : kernels::linear(ctx, m, w.w_ff2, lopt, "gen_ff2").y;
    if (!dev.traffic_only()) {
      for (std::size_t c = 0; c < y.cols(); ++c) {
        y(0, c) = numeric::round_to_storage(p, y(0, c) + w.b_ff2[c]);
      }
    }
    kernels::fused_residual_layernorm(dev, y, attn, w.ln2_gamma, w.ln2_beta,
                                      p, "gen_residual_layernorm2");
    h = std::move(y);
  }
  return h;
}

tensor::MatrixF GenerationSession::prime(core::ExecContext& ctx,
                                         const tensor::MatrixF& prompt) {
  tensor::MatrixF last;
  for (std::size_t t = 0; t < prompt.rows(); ++t) {
    tensor::MatrixF row(1, prompt.cols());
    for (std::size_t c = 0; c < prompt.cols(); ++c) row(0, c) = prompt(t, c);
    last = step(ctx, row);
  }
  return last;
}

void GenerationSession::reset() {
  for (auto& cache : caches_) cache.reset();
}

GenerationResult generate(core::ExecContext& ctx, GenerationSession& session,
                          const DecodeParams& params) {
  GenerationResult result;
  if (params.max_new_tokens == 0) {
    result.stop_reason = StopReason::kMaxTokens;
    return result;
  }
  const std::vector<std::int32_t> prompt = params.prompt();
  // Prefill: positions 0..n-2 populate the KV caches and emit nothing;
  // their hidden states are discarded. Capacity and fault stops degrade
  // exactly like the decode loop's — the (empty) partial reply is kept.
  for (std::size_t t = 0; t + 1 < prompt.size(); ++t) {
    if (session.at_capacity()) {
      result.stop_reason = StopReason::kKvCacheFull;
      return result;
    }
    try {
      (void)session.step(ctx,
                         params.embed(prompt[t], session.context_length()));
    } catch (const gpusim::KernelFault& f) {
      result.stop_reason = StopReason::kKernelFault;
      result.fault_kernel = f.kernel();
      return result;
    } catch (const std::length_error&) {
      result.stop_reason = StopReason::kKvCacheFull;
      return result;
    }
  }
  std::int32_t token = prompt.back();
  for (std::size_t t = 0; t < params.max_new_tokens; ++t) {
    if (session.at_capacity()) {
      result.stop_reason = StopReason::kKvCacheFull;
      return result;
    }
    tensor::MatrixF h;
    try {
      h = session.step(ctx, params.embed(token, session.context_length()));
    } catch (const gpusim::KernelFault& f) {
      result.stop_reason = StopReason::kKernelFault;
      result.fault_kernel = f.kernel();
      return result;
    } catch (const std::length_error&) {
      // Defensive: a cache filled behind our back (shared caches, races in
      // future batched paths) must degrade exactly like the pre-checked
      // capacity stop, never abort generation.
      result.stop_reason = StopReason::kKvCacheFull;
      return result;
    }
    token = params.select(h);
    result.tokens.push_back(token);
    if (params.eos_token >= 0 && token == params.eos_token) {
      result.stop_reason = StopReason::kEos;
      return result;
    }
  }
  result.stop_reason = StopReason::kMaxTokens;
  return result;
}

GenerationResult generate(core::ExecContext& ctx, GenerationSession& session,
                          std::int32_t first_token,
                          std::size_t max_new_tokens, const EmbedFn& embed,
                          const SelectFn& select, std::int32_t eos_token) {
  DecodeParams params;
  params.first_token = first_token;
  params.max_new_tokens = max_new_tokens;
  params.embed = embed;
  params.select = select;
  params.eos_token = eos_token;
  return generate(ctx, session, params);
}

}  // namespace et::nn
