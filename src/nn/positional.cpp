#include "nn/positional.hpp"

#include <cmath>

namespace et::nn {

tensor::MatrixF positional_encoding(std::size_t seq_len, std::size_t d_model) {
  tensor::MatrixF pe(seq_len, d_model);
  for (std::size_t pos = 0; pos < seq_len; ++pos) {
    for (std::size_t i = 0; i < d_model / 2; ++i) {
      const double angle =
          static_cast<double>(pos) /
          std::pow(10000.0, 2.0 * static_cast<double>(i) /
                                static_cast<double>(d_model));
      pe(pos, 2 * i) = static_cast<float>(std::sin(angle));
      if (2 * i + 1 < d_model) {
        pe(pos, 2 * i + 1) = static_cast<float>(std::cos(angle));
      }
    }
  }
  return pe;
}

void add_positional_encoding(tensor::MatrixF& x) {
  const tensor::MatrixF pe = positional_encoding(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.flat()[i] += pe.flat()[i];
  }
}

}  // namespace et::nn
