// nn::Model — the validated model handle behind every decode entry path.
//
// GenerationSession, BatchedGenerationScheduler and
// serving::InferenceServer used to each take a raw
// `const std::vector<EncoderWeights>*` plus EncoderOptions and re-derive
// (or reject) the weight layout independently; this handle is now the one
// construction point. It owns the run configuration — borrowed layer
// weights, options, the per-slot context capacity — and the capability
// flags derived from the weights: whether the pre-computed W_VO fold
// (§3.1) is in play, which pruned formats appear, and the per-layer
// V-plane width the KV caches must allocate (full d_model, condensed
// Σkept for a condensable row-pruned W_V, or H·kept under the fold).
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "nn/encoder.hpp"

namespace et::nn {

class Model {
 public:
  /// `layers` is borrowed and must outlive the Model and everything
  /// constructed from it (the lifetime contract the entry paths used to
  /// state individually). Throws std::invalid_argument on a null layer
  /// vector, an invalid attention config, max_context == 0, or a W_VO
  /// block whose head count or shape disagrees with the config.
  Model(const std::vector<EncoderWeights>* layers, EncoderOptions opt,
        std::size_t max_context);

  [[nodiscard]] const std::vector<EncoderWeights>& layers() const noexcept {
    return *layers_;
  }
  [[nodiscard]] const EncoderOptions& options() const noexcept { return opt_; }
  [[nodiscard]] std::size_t max_context() const noexcept { return max_ctx_; }
  [[nodiscard]] std::size_t num_layers() const noexcept {
    return v_widths_.size();
  }
  [[nodiscard]] std::size_t d_model() const noexcept {
    return opt_.attn.d_model;
  }

  /// True when any layer carries the pre-computed W_VO fold.
  [[nodiscard]] bool has_precomputed() const noexcept {
    return has_precomputed_;
  }
  /// Distinct formats appearing across the attention weights, in enum
  /// order (kDense first when present).
  [[nodiscard]] const std::vector<sparse::PruneMethod>& prune_methods()
      const noexcept {
    return prune_methods_;
  }
  /// The layout tag reported by `et_cli --json` and
  /// `bench/ablation_serving`: "precomputed" when any layer folds W_VO,
  /// else "pruned" when any attention weight is non-dense, else "dense".
  [[nodiscard]] std::string_view weight_layout() const noexcept;

  /// Cached K-plane row width (always the full hidden width).
  [[nodiscard]] std::size_t k_width() const noexcept {
    return opt_.attn.d_model;
  }
  /// Cached V-plane row width for `layer`: H·kept under the W_VO fold,
  /// Σkept for a condensable row-pruned W_V, d_model otherwise.
  [[nodiscard]] std::size_t v_width(std::size_t layer) const {
    return v_widths_.at(layer);
  }
  [[nodiscard]] const std::vector<std::size_t>& v_widths() const noexcept {
    return v_widths_;
  }

 private:
  const std::vector<EncoderWeights>* layers_ = nullptr;  // not owned
  EncoderOptions opt_;
  std::size_t max_ctx_ = 0;
  std::vector<std::size_t> v_widths_;  // index = layer
  std::vector<sparse::PruneMethod> prune_methods_;
  bool has_precomputed_ = false;
};

}  // namespace et::nn
