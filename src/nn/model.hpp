// nn::Model — the validated model handle behind every decode entry path.
//
// GenerationSession, BatchedGenerationScheduler and
// serving::InferenceServer used to each take a raw
// `const std::vector<EncoderWeights>*` plus EncoderOptions and re-derive
// (or reject) the weight layout independently; this handle is now the one
// construction point. It owns the run configuration — borrowed layer
// weights, options, the per-slot context capacity — and the capability
// flags derived from the weights: whether the pre-computed W_VO fold
// (§3.1) is in play, which pruned formats appear, and the per-layer
// V-plane width the KV caches must allocate (full d_model, condensed
// Σkept for a condensable row-pruned W_V, or H·kept under the fold).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "nn/encoder.hpp"
#include "nn/weight_format.hpp"
#include "quant/quantize.hpp"

namespace et::nn {

/// One layer's INT8 weights, owned by the Model when it was constructed
/// with WeightFormat::kInt8. Every GEMM operand of the decode tick is
/// quantized from its dense materialization (so pruned zeros survive
/// exactly); `vo` replaces wv/wo under the W_VO fold, and a condensable
/// row-pruned W_V quantizes its condensed matrix with `v_kept` naming the
/// original column per condensed column (the cache keeps its narrow
/// V-plane width — INT8 composes with the PR-5 layouts, not instead of
/// them).
struct QuantizedLayer {
  quant::QuantizedWeight wq, wk, wv, wo;
  quant::QuantizedWeight vo;   ///< folded W_VO; empty unless precomputed
  quant::QuantizedWeight ff1, ff2;
  std::vector<std::uint32_t> v_kept;  ///< condensed-V column map
};

class Model {
 public:
  /// `layers` is borrowed and must outlive the Model and everything
  /// constructed from it (the lifetime contract the entry paths used to
  /// state individually). Throws std::invalid_argument on a null layer
  /// vector, an invalid attention config, max_context == 0, or a W_VO
  /// block whose head count or shape disagrees with the config.
  ///
  /// `format` is the requested WeightFormat: std::nullopt derives it from
  /// the weights (dense / pruned / precomputed — the historical
  /// behavior); WeightFormat::kInt8 additionally quantizes every decode
  /// GEMM operand into owned QuantizedLayers; any other explicit value
  /// must MATCH the derived layout (a descriptor that contradicts the
  /// weights throws std::invalid_argument naming both sides — the
  /// validation et_cli leans on).
  Model(const std::vector<EncoderWeights>* layers, EncoderOptions opt,
        std::size_t max_context,
        std::optional<WeightFormat> format = std::nullopt);

  [[nodiscard]] const std::vector<EncoderWeights>& layers() const noexcept {
    return *layers_;
  }
  [[nodiscard]] const EncoderOptions& options() const noexcept { return opt_; }
  [[nodiscard]] std::size_t max_context() const noexcept { return max_ctx_; }
  [[nodiscard]] std::size_t num_layers() const noexcept {
    return v_widths_.size();
  }
  [[nodiscard]] std::size_t d_model() const noexcept {
    return opt_.attn.d_model;
  }

  /// True when any layer carries the pre-computed W_VO fold.
  [[nodiscard]] bool has_precomputed() const noexcept {
    return has_precomputed_;
  }
  /// Distinct formats appearing across the attention weights, in enum
  /// order (kDense first when present).
  [[nodiscard]] const std::vector<sparse::PruneMethod>& prune_methods()
      const noexcept {
    return prune_methods_;
  }
  /// The WeightFormat descriptor consumed by the scheduler's decode tick
  /// and echoed (via to_string) by `et_cli --json` and the benches:
  /// kInt8 when quantization was requested; else kPrecomputed when any
  /// layer folds W_VO, else kPruned when any attention weight is
  /// non-dense, else kDense.
  [[nodiscard]] WeightFormat weight_layout() const noexcept { return format_; }

  /// True when the decode paths run the INT8 GEMM variants.
  [[nodiscard]] bool quantized() const noexcept {
    return format_ == WeightFormat::kInt8;
  }
  /// The owned INT8 weights for `layer`; only meaningful when
  /// quantized().
  [[nodiscard]] const QuantizedLayer& quantized_layer(std::size_t layer) const {
    return qlayers_.at(layer);
  }

  /// Cached K-plane row width (always the full hidden width).
  [[nodiscard]] std::size_t k_width() const noexcept {
    return opt_.attn.d_model;
  }
  /// Cached V-plane row width for `layer`: H·kept under the W_VO fold,
  /// Σkept for a condensable row-pruned W_V, d_model otherwise.
  [[nodiscard]] std::size_t v_width(std::size_t layer) const {
    return v_widths_.at(layer);
  }
  [[nodiscard]] const std::vector<std::size_t>& v_widths() const noexcept {
    return v_widths_;
  }

 private:
  const std::vector<EncoderWeights>* layers_ = nullptr;  // not owned
  EncoderOptions opt_;
  std::size_t max_ctx_ = 0;
  std::vector<std::size_t> v_widths_;  // index = layer
  std::vector<sparse::PruneMethod> prune_methods_;
  bool has_precomputed_ = false;
  WeightFormat format_ = WeightFormat::kDense;
  std::vector<QuantizedLayer> qlayers_;  // non-empty iff kInt8
};

}  // namespace et::nn
