// Token embedding lookup (host-side pre-processing; the paper's latency
// metric "takes word embeddings as the input" — §5.1).
#pragma once

#include <cstdint>
#include <span>

#include "tensor/matrix.hpp"

namespace et::nn {

/// Gather rows of the (vocab × d_model) table for each token id.
[[nodiscard]] inline tensor::MatrixF embed_tokens(
    const tensor::MatrixF& table, std::span<const std::int32_t> tokens) {
  tensor::MatrixF x(tokens.size(), table.cols());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const auto id = static_cast<std::size_t>(tokens[i]);
    for (std::size_t c = 0; c < table.cols(); ++c) {
      x(i, c) = table(id, c);
    }
  }
  return x;
}

}  // namespace et::nn
