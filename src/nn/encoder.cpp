#include "nn/encoder.hpp"

#include <cassert>
#include <random>

#include "kernels/elementwise.hpp"
#include "kernels/linear.hpp"
#include "tensor/random.hpp"

namespace et::nn {

namespace {

using numeric::Precision;

std::vector<float> small_random_vector(std::size_t n, std::uint64_t seed,
                                       float scale) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, scale);
  std::vector<float> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

void apply_bias_gelu(tensor::MatrixF& h, const std::vector<float>& bias,
                     Precision p) {
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  for (std::size_t r = 0; r < h.rows(); ++r) {
    for (std::size_t c = 0; c < h.cols(); ++c) {
      const float v = h(r, c) + bias[c];
      const float inner = kSqrt2OverPi * (v + 0.044715f * v * v * v);
      h(r, c) = numeric::round_to_storage(
          p, 0.5f * v * (1.0f + std::tanh(inner)));
    }
  }
}

/// MLP + residual + layernorm with pipeline-dependent fusion. Returns the
/// block output; `x` is the block input (residual source).
tensor::MatrixF mlp_block(core::ExecContext& ctx, const tensor::MatrixF& x,
                          const EncoderWeights& w, const EncoderOptions& opt) {
  gpusim::Device& dev = ctx.device();
  const Precision p = opt.attn.precision;
  kernels::LinearOptions lopt;
  lopt.precision = p;

  tensor::MatrixF h = kernels::linear(ctx, x, w.w_ff1, lopt, "ff1").y;
  switch (opt.pipeline) {
    case Pipeline::kModular:
      // Separate bias and activation kernels.
      kernels::add_bias(dev, h, w.b_ff1, p, "ff1_bias");
      kernels::gelu(dev, h, p, "gelu");
      break;
    case Pipeline::kTensorRT: {
      // TensorRT: bias+GELU fused into one epilogue kernel (still a
      // global round trip of the d_ff-wide activation).
      auto launch = dev.launch({.name = "ff1_bias_gelu",
                                .ctas = std::max<std::size_t>(1, h.size() / 4096),
                                .shared_bytes_per_cta = 0,
                                .pattern = gpusim::AccessPattern::kStreaming});
      launch.load_bytes(h.size() * numeric::storage_bytes(p));
      launch.store_bytes(h.size() * numeric::storage_bytes(p));
      launch.fp_ops(9 * h.size());
      launch.finish();
      if (!dev.traffic_only()) apply_bias_gelu(h, w.b_ff1, p);
      break;
    }
    case Pipeline::kFasterTransformer:
    case Pipeline::kET:
      // bias+GELU folded into the GEMM epilogue: zero extra kernels,
      // zero extra global traffic (the activation is transformed in
      // registers before the store the GEMM performs anyway).
      if (!dev.traffic_only()) apply_bias_gelu(h, w.b_ff1, p);
      break;
  }

  tensor::MatrixF y = kernels::linear(ctx, h, w.w_ff2, lopt, "ff2").y;
  switch (opt.pipeline) {
    case Pipeline::kModular:
      kernels::add_bias(dev, y, w.b_ff2, p, "ff2_bias");
      break;
    case Pipeline::kTensorRT:
      kernels::add_bias(dev, y, w.b_ff2, p, "ff2_bias_fused");
      break;
    case Pipeline::kFasterTransformer:
    case Pipeline::kET:
      // Folded into the ff2 GEMM epilogue.
      if (!dev.traffic_only()) {
        for (std::size_t r = 0; r < y.rows(); ++r) {
          for (std::size_t c = 0; c < y.cols(); ++c) {
            y(r, c) = numeric::round_to_storage(p, y(r, c) + w.b_ff2[c]);
          }
        }
      }
      break;
  }
  return y;
}

}  // namespace

EncoderWeights make_dense_encoder_weights(const ModelConfig& cfg,
                                          std::uint64_t seed) {
  EncoderWeights w;
  core::AttentionConfig acfg;
  acfg.d_model = cfg.d_model;
  acfg.num_heads = cfg.num_heads;
  w.attn = core::make_dense_weights(acfg, seed);

  tensor::MatrixF ff1(cfg.d_ff, cfg.d_model), ff2(cfg.d_model, cfg.d_ff);
  tensor::fill_normal(ff1, seed + 11, 0.0f,
                      1.0f / std::sqrt(static_cast<float>(cfg.d_model)));
  tensor::fill_normal(ff2, seed + 12, 0.0f,
                      1.0f / std::sqrt(static_cast<float>(cfg.d_ff)));
  w.w_ff1 = sparse::DenseWeight(std::move(ff1));
  w.w_ff2 = sparse::DenseWeight(std::move(ff2));
  w.b_ff1 = small_random_vector(cfg.d_ff, seed + 13, 0.02f);
  w.b_ff2 = small_random_vector(cfg.d_model, seed + 14, 0.02f);
  w.ln1_gamma.assign(cfg.d_model, 1.0f);
  w.ln1_beta.assign(cfg.d_model, 0.0f);
  w.ln2_gamma.assign(cfg.d_model, 1.0f);
  w.ln2_beta.assign(cfg.d_model, 0.0f);
  return w;
}

tensor::MatrixF encoder_forward(core::ExecContext& ctx,
                                const tensor::MatrixF& x,
                                const EncoderWeights& w,
                                const EncoderOptions& opt) {
  gpusim::Device& dev = ctx.device();
  assert(x.rows() == opt.attn.seq_len && x.cols() == opt.attn.d_model);
  const Precision p = opt.attn.precision;

  // --- self-attention ---
  tensor::MatrixF attn_out;
  switch (opt.pipeline) {
    case Pipeline::kModular:
      attn_out = core::modular_attention(ctx, x, w.attn, opt.attn);
      break;
    case Pipeline::kTensorRT:
      attn_out = core::fused_attention(ctx, x, w.attn, opt.attn,
                                       /*aggressive_fusion=*/false);
      break;
    case Pipeline::kFasterTransformer:
      attn_out = core::fused_attention(ctx, x, w.attn, opt.attn,
                                       /*aggressive_fusion=*/true);
      break;
    case Pipeline::kET:
      attn_out = core::adaptive_attention(ctx, x, w.attn, opt.attn,
                                          opt.adaptive);
      break;
  }

  // --- residual + layernorm 1 ---
  const bool fuse_res_ln = opt.pipeline == Pipeline::kFasterTransformer ||
                           opt.pipeline == Pipeline::kET;
  if (fuse_res_ln) {
    kernels::fused_residual_layernorm(dev, attn_out, x, w.ln1_gamma,
                                      w.ln1_beta, p, "residual_layernorm1");
  } else {
    kernels::residual_add(dev, attn_out, x, p, "attn_residual");
    kernels::layernorm(dev, attn_out, w.ln1_gamma, w.ln1_beta, 1e-5f, p,
                       "layernorm1");
  }

  // --- MLP ---
  tensor::MatrixF mlp_out = mlp_block(ctx, attn_out, w, opt);

  // --- residual + layernorm 2 ---
  if (fuse_res_ln) {
    kernels::fused_residual_layernorm(dev, mlp_out, attn_out, w.ln2_gamma,
                                      w.ln2_beta, p, "residual_layernorm2");
  } else {
    kernels::residual_add(dev, mlp_out, attn_out, p, "mlp_residual");
    kernels::layernorm(dev, mlp_out, w.ln2_gamma, w.ln2_beta, 1e-5f, p,
                       "layernorm2");
  }
  return mlp_out;
}

tensor::MatrixF encoder_stack_forward(core::ExecContext& ctx,
                                      const tensor::MatrixF& x,
                                      const std::vector<EncoderWeights>& layers,
                                      const EncoderOptions& opt) {
  tensor::MatrixF h = x;
  for (const auto& layer : layers) {
    h = encoder_forward(ctx, h, layer, opt);
  }
  return h;
}

std::vector<tensor::MatrixF> batched_encoder_forward(
    core::ExecContext& ctx, const std::vector<tensor::MatrixF>& batch,
    const EncoderWeights& w, const EncoderOptions& opt) {
  gpusim::Device& dev = ctx.device();
  const Precision p = opt.attn.precision;
  std::size_t total_rows = 0;
  for (const auto& x : batch) {
    assert(x.cols() == opt.attn.d_model);
    total_rows += x.rows();
  }

  // --- attention per sample (adaptive per-sequence-length dispatch, the
  // padding-free property TurboTransformer argues for) ---
  tensor::MatrixF stacked(total_rows, opt.attn.d_model);
  tensor::MatrixF residual_src(total_rows, opt.attn.d_model);
  std::size_t row0 = 0;
  for (const auto& x : batch) {
    core::AttentionConfig cfg = opt.attn;
    cfg.seq_len = x.rows();
    const tensor::MatrixF a =
        core::adaptive_attention(ctx, x, w.attn, cfg, opt.adaptive);
    for (std::size_t r = 0; r < x.rows(); ++r) {
      for (std::size_t c = 0; c < x.cols(); ++c) {
        stacked(row0 + r, c) = a(r, c);
        residual_src(row0 + r, c) = x(r, c);
      }
    }
    row0 += x.rows();
  }

  // --- everything else on the stacked activations: one kernel set for
  // the whole batch ---
  kernels::fused_residual_layernorm(dev, stacked, residual_src, w.ln1_gamma,
                                    w.ln1_beta, p,
                                    "batched_residual_layernorm1");
  tensor::MatrixF mlp_out = [&] {
    kernels::LinearOptions lopt;
    lopt.precision = p;
    tensor::MatrixF h =
        kernels::linear(ctx, stacked, w.w_ff1, lopt, "batched_ff1").y;
    if (!dev.traffic_only()) apply_bias_gelu(h, w.b_ff1, p);
    tensor::MatrixF y =
        kernels::linear(ctx, h, w.w_ff2, lopt, "batched_ff2").y;
    if (!dev.traffic_only()) {
      for (std::size_t r = 0; r < y.rows(); ++r) {
        for (std::size_t c = 0; c < y.cols(); ++c) {
          y(r, c) = numeric::round_to_storage(p, y(r, c) + w.b_ff2[c]);
        }
      }
    }
    return y;
  }();
  kernels::fused_residual_layernorm(dev, mlp_out, stacked, w.ln2_gamma,
                                    w.ln2_beta, p,
                                    "batched_residual_layernorm2");

  // Unstack.
  std::vector<tensor::MatrixF> out;
  out.reserve(batch.size());
  row0 = 0;
  for (const auto& x : batch) {
    tensor::MatrixF y(x.rows(), x.cols());
    for (std::size_t r = 0; r < x.rows(); ++r) {
      for (std::size_t c = 0; c < x.cols(); ++c) {
        y(r, c) = mlp_out(row0 + r, c);
      }
    }
    row0 += x.rows();
    out.push_back(std::move(y));
  }
  return out;
}

EncoderOptions options_for(Pipeline pipeline, const ModelConfig& model,
                           std::size_t seq_len, bool causal_mask) {
  EncoderOptions opt;
  opt.pipeline = pipeline;
  opt.attn.seq_len = seq_len;
  opt.attn.d_model = model.d_model;
  opt.attn.num_heads = model.num_heads;
  opt.attn.causal_mask = causal_mask;
  switch (pipeline) {
    case Pipeline::kModular:
      // PyTorch default: FP32 general-core math, scale applied after QKᵀ.
      opt.attn.precision = Precision::kFp32;
      opt.attn.scale_before_multiply = false;
      break;
    case Pipeline::kTensorRT:
    case Pipeline::kFasterTransformer:
      // Mixed precision (FP32 accumulate) — required without the §3.3
      // reorder to dodge FP16 overflow.
      opt.attn.precision = Precision::kMixed;
      opt.attn.scale_before_multiply = false;
      break;
    case Pipeline::kET:
      // Pure FP16 enabled by the scale reorder.
      opt.attn.precision = Precision::kPureFp16;
      opt.attn.scale_before_multiply = true;
      break;
  }
  return opt;
}

}  // namespace et::nn
