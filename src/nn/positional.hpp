// Sinusoidal positional encoding (Eq. 1–2 of the paper).
#pragma once

#include "tensor/matrix.hpp"

namespace et::nn {

/// PE(pos, 2i)   = sin(pos / 10000^(2i/d_model))
/// PE(pos, 2i+1) = cos(pos / 10000^(2i/d_model))
[[nodiscard]] tensor::MatrixF positional_encoding(std::size_t seq_len,
                                                  std::size_t d_model);

/// x += PE (host-side preprocessing; the paper adds PE before the encoder
/// stack).
void add_positional_encoding(tensor::MatrixF& x);

}  // namespace et::nn
