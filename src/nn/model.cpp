#include "nn/model.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace et::nn {

Model::Model(const std::vector<EncoderWeights>* layers, EncoderOptions opt,
             std::size_t max_context)
    : layers_(layers), opt_(std::move(opt)), max_ctx_(max_context) {
  if (layers_ == nullptr) {
    throw std::invalid_argument("nn::Model: layers must not be null");
  }
  opt_.attn.validate();
  if (max_ctx_ == 0) {
    throw std::invalid_argument("nn::Model: max_context must be > 0");
  }

  const std::size_t d = opt_.attn.d_model;
  const std::size_t heads = opt_.attn.num_heads;
  const auto note_method = [this](const sparse::AnyWeight& w) {
    const sparse::PruneMethod m = sparse::method_of(w);
    if (std::find(prune_methods_.begin(), prune_methods_.end(), m) ==
        prune_methods_.end()) {
      prune_methods_.push_back(m);
    }
  };

  v_widths_.reserve(layers_->size());
  for (std::size_t l = 0; l < layers_->size(); ++l) {
    const core::AttentionWeights& aw = (*layers_)[l].attn;
    note_method(aw.wq);
    note_method(aw.wk);
    note_method(aw.wv);
    note_method(aw.wo);
    if (aw.has_precomputed()) {
      // The fold must agree with the attention config before any cache
      // is sized from it — a half-checked W_VO would surface later as an
      // opaque width mismatch deep in a decode tick.
      const core::PrecomputedVO& vo = aw.vo;
      if (vo.num_heads != heads || vo.weight.cols() != d ||
          vo.weight.rows() != heads * vo.kept() || vo.kept() == 0) {
        throw std::invalid_argument(
            "nn::Model: layer " + std::to_string(l) +
            " W_VO shape disagrees with the attention config");
      }
      has_precomputed_ = true;
      v_widths_.push_back(heads * vo.kept());
    } else if (aw.v_condensable(heads)) {
      v_widths_.push_back(
          std::get<sparse::RowPrunedWeight>(aw.wv).kept_rows().size());
    } else {
      v_widths_.push_back(d);
    }
  }
  std::sort(prune_methods_.begin(), prune_methods_.end());
}

std::string_view Model::weight_layout() const noexcept {
  if (has_precomputed_) return "precomputed";
  for (const sparse::PruneMethod m : prune_methods_) {
    if (m != sparse::PruneMethod::kDense) return "pruned";
  }
  return "dense";
}

}  // namespace et::nn
