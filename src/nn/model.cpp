#include "nn/model.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace et::nn {

Model::Model(const std::vector<EncoderWeights>* layers, EncoderOptions opt,
             std::size_t max_context, std::optional<WeightFormat> format)
    : layers_(layers), opt_(std::move(opt)), max_ctx_(max_context) {
  if (layers_ == nullptr) {
    throw std::invalid_argument("nn::Model: layers must not be null");
  }
  opt_.attn.validate();
  if (max_ctx_ == 0) {
    throw std::invalid_argument("nn::Model: max_context must be > 0");
  }

  const std::size_t d = opt_.attn.d_model;
  const std::size_t heads = opt_.attn.num_heads;
  const auto note_method = [this](const sparse::AnyWeight& w) {
    const sparse::PruneMethod m = sparse::method_of(w);
    if (std::find(prune_methods_.begin(), prune_methods_.end(), m) ==
        prune_methods_.end()) {
      prune_methods_.push_back(m);
    }
  };

  v_widths_.reserve(layers_->size());
  for (std::size_t l = 0; l < layers_->size(); ++l) {
    const core::AttentionWeights& aw = (*layers_)[l].attn;
    note_method(aw.wq);
    note_method(aw.wk);
    note_method(aw.wv);
    note_method(aw.wo);
    if (aw.has_precomputed()) {
      // The fold must agree with the attention config before any cache
      // is sized from it — a half-checked W_VO would surface later as an
      // opaque width mismatch deep in a decode tick.
      const core::PrecomputedVO& vo = aw.vo;
      if (vo.num_heads != heads || vo.weight.cols() != d ||
          vo.weight.rows() != heads * vo.kept() || vo.kept() == 0) {
        throw std::invalid_argument(
            "nn::Model: layer " + std::to_string(l) +
            " W_VO shape disagrees with the attention config");
      }
      has_precomputed_ = true;
      v_widths_.push_back(heads * vo.kept());
    } else if (aw.v_condensable(heads)) {
      v_widths_.push_back(
          std::get<sparse::RowPrunedWeight>(aw.wv).kept_rows().size());
    } else {
      v_widths_.push_back(d);
    }
  }
  std::sort(prune_methods_.begin(), prune_methods_.end());

  // Derive the base layout, then reconcile it with the requested
  // descriptor. kInt8 layers ON TOP of any base layout (it quantizes the
  // dense materialization the decode GEMMs would read anyway); every
  // other explicit request must agree with what the weights actually
  // are.
  WeightFormat derived = WeightFormat::kDense;
  if (has_precomputed_) {
    derived = WeightFormat::kPrecomputed;
  } else {
    for (const sparse::PruneMethod m : prune_methods_) {
      if (m != sparse::PruneMethod::kDense) derived = WeightFormat::kPruned;
    }
  }
  format_ = format.value_or(derived);
  if (format_ != WeightFormat::kInt8 && format_ != derived) {
    throw std::invalid_argument(
        "nn::Model: requested weight format '" +
        std::string(to_string(format_)) + "' but the weights are '" +
        std::string(to_string(derived)) + "'");
  }
  if (format_ != WeightFormat::kInt8) return;

  // Quantize every GEMM operand the decode tick reads, in the exact
  // layout it reads them: the folded W_VO replaces wv/wo, a condensable
  // row-pruned W_V quantizes condensed (v_kept preserving the column
  // map), and everything else quantizes its dense materialization —
  // pruned zeros round to exact zeros, so the mask survives bit for bit.
  qlayers_.reserve(layers_->size());
  for (const EncoderWeights& w : *layers_) {
    QuantizedLayer ql;
    ql.wq = quant::quantize_weight(sparse::to_dense(w.attn.wq));
    ql.wk = quant::quantize_weight(sparse::to_dense(w.attn.wk));
    if (w.attn.has_precomputed()) {
      ql.vo = quant::quantize_weight(w.attn.vo.weight);
    } else if (w.attn.v_condensable(opt_.attn.num_heads)) {
      const auto& rp = std::get<sparse::RowPrunedWeight>(w.attn.wv);
      ql.wv = quant::quantize_weight(rp.condensed());
      ql.v_kept = rp.kept_rows();
      ql.wo = quant::quantize_weight(sparse::to_dense(w.attn.wo));
    } else {
      ql.wv = quant::quantize_weight(sparse::to_dense(w.attn.wv));
      ql.wo = quant::quantize_weight(sparse::to_dense(w.attn.wo));
    }
    ql.ff1 = quant::quantize_weight(sparse::to_dense(w.w_ff1));
    ql.ff2 = quant::quantize_weight(sparse::to_dense(w.w_ff2));
    qlayers_.push_back(std::move(ql));
  }
}

}  // namespace et::nn
