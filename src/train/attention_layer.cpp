#include "train/attention_layer.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace et::train {

MultiHeadAttention::MultiHeadAttention(std::size_t d_model,
                                       std::size_t num_heads,
                                       std::uint64_t seed, bool causal)
    : wq(d_model, d_model, seed + 1),
      wk(d_model, d_model, seed + 2),
      wv(d_model, d_model, seed + 3),
      wo(d_model, d_model, seed + 4),
      d_model_(d_model),
      heads_(num_heads),
      causal_(causal) {}

tensor::MatrixF MultiHeadAttention::forward(const tensor::MatrixF& x) {
  const std::size_t s = x.rows();
  const std::size_t dk = d_model_ / heads_;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk));

  q_ = wq.forward(x);
  k_ = wk.forward(x);
  v_ = wv.forward(x);

  // s_ stacks heads vertically: rows [h·s, (h+1)·s).
  s_ = tensor::MatrixF(heads_ * s, s);
  z_ = tensor::MatrixF(s, d_model_);

  for (std::size_t h = 0; h < heads_; ++h) {
    for (std::size_t i = 0; i < s; ++i) {
      float mx = -std::numeric_limits<float>::infinity();
      for (std::size_t j = 0; j < s; ++j) {
        float acc = 0.0f;
        for (std::size_t c = 0; c < dk; ++c) {
          acc += q_(i, h * dk + c) * k_(j, h * dk + c);
        }
        acc *= scale;
        if (causal_ && j > i) acc = -std::numeric_limits<float>::infinity();
        s_(h * s + i, j) = acc;
        mx = std::max(mx, acc);
      }
      float sum = 0.0f;
      for (std::size_t j = 0; j < s; ++j) {
        float& e = s_(h * s + i, j);
        e = std::exp(e - mx);
        sum += e;
      }
      for (std::size_t j = 0; j < s; ++j) s_(h * s + i, j) /= sum;
      for (std::size_t c = 0; c < dk; ++c) {
        float acc = 0.0f;
        for (std::size_t j = 0; j < s; ++j) {
          acc += s_(h * s + i, j) * v_(j, h * dk + c);
        }
        z_(i, h * dk + c) = acc;
      }
    }
  }
  return wo.forward(z_);
}

tensor::MatrixF MultiHeadAttention::backward(const tensor::MatrixF& dy) {
  const std::size_t s = dy.rows();
  const std::size_t dk = d_model_ / heads_;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk));

  const tensor::MatrixF dz = wo.backward(dy);

  tensor::MatrixF dq(s, d_model_), dkm(s, d_model_), dv(s, d_model_);
  for (std::size_t h = 0; h < heads_; ++h) {
    // dV_h = S_hᵀ · dZ_h
    for (std::size_t j = 0; j < s; ++j) {
      for (std::size_t c = 0; c < dk; ++c) {
        float acc = 0.0f;
        for (std::size_t i = 0; i < s; ++i) {
          acc += s_(h * s + i, j) * dz(i, h * dk + c);
        }
        dv(j, h * dk + c) = acc;
      }
    }
    for (std::size_t i = 0; i < s; ++i) {
      // dS row, then softmax backward in place.
      std::vector<float> ds(s);
      for (std::size_t j = 0; j < s; ++j) {
        float acc = 0.0f;
        for (std::size_t c = 0; c < dk; ++c) {
          acc += dz(i, h * dk + c) * v_(j, h * dk + c);
        }
        ds[j] = acc;
      }
      float dot = 0.0f;
      for (std::size_t j = 0; j < s; ++j) dot += ds[j] * s_(h * s + i, j);
      for (std::size_t j = 0; j < s; ++j) {
        ds[j] = s_(h * s + i, j) * (ds[j] - dot);  // dA (pre-softmax grad)
      }
      // dQ_i += scale · Σ_j dA_ij K_j ; dK_j += scale · dA_ij Q_i.
      for (std::size_t j = 0; j < s; ++j) {
        if (causal_ && j > i) continue;  // masked entries carry no grad
        const float d = ds[j] * scale;
        for (std::size_t c = 0; c < dk; ++c) {
          dq(i, h * dk + c) += d * k_(j, h * dk + c);
          dkm(j, h * dk + c) += d * q_(i, h * dk + c);
        }
      }
    }
  }

  tensor::MatrixF dx = wq.backward(dq);
  const tensor::MatrixF dxk = wk.backward(dkm);
  const tensor::MatrixF dxv = wv.backward(dv);
  for (std::size_t i = 0; i < dx.size(); ++i) {
    dx.flat()[i] += dxk.flat()[i] + dxv.flat()[i];
  }
  return dx;
}

void MultiHeadAttention::zero_grad() {
  wq.zero_grad();
  wk.zero_grad();
  wv.zero_grad();
  wo.zero_grad();
}

void MultiHeadAttention::collect(std::vector<Param*>& out) {
  wq.collect(out);
  wk.collect(out);
  wv.collect(out);
  wo.collect(out);
}

void MultiHeadAttention::bias_step(float lr, float beta1, float beta2,
                                   float eps, long t) {
  wq.bias_step(lr, beta1, beta2, eps, t);
  wk.bias_step(lr, beta1, beta2, eps, t);
  wv.bias_step(lr, beta1, beta2, eps, t);
  wo.bias_step(lr, beta1, beta2, eps, t);
}

}  // namespace et::train
