#include "train/folded_attention.hpp"

#include <cassert>
#include <cmath>
#include <limits>

#include "tensor/random.hpp"
#include "train/attention_layer.hpp"

namespace et::train {

FoldedMultiHeadAttention::FoldedMultiHeadAttention(std::size_t d_model,
                                                   std::size_t num_heads,
                                                   std::uint64_t seed,
                                                   bool causal)
    : wq(d_model, d_model, seed + 1),
      wk(d_model, d_model, seed + 2),
      wvo(num_heads * d_model, d_model),
      d_model_(d_model),
      heads_(num_heads),
      causal_(causal) {
  // Initialize like the product of two Xavier matrices: variance
  // 1/(d·(fan_in+fan_out)) keeps the folded path's output scale matched
  // to the unfolded layer's.
  tensor::fill_normal(wvo.w, seed + 3, 0.0f,
                      1.0f / static_cast<float>(d_model));
}

FoldedMultiHeadAttention FoldedMultiHeadAttention::fold(
    const MultiHeadAttention& mha) {
  const std::size_t d = mha.d_model();
  const std::size_t heads = mha.num_heads();
  const std::size_t dk = d / heads;

  FoldedMultiHeadAttention out(d, heads, 1, mha.causal());
  out.wq.weight.w = mha.wq.weight.w;
  out.wq.bias = mha.wq.bias;
  out.wk.weight.w = mha.wk.weight.w;
  out.wk.bias = mha.wk.bias;

  // wvo(h·d + j, i) = Σ_k W_V(h·dk + k, i) · W_O(j, h·dk + k)  (Eq. 5).
  for (std::size_t h = 0; h < heads; ++h) {
    for (std::size_t j = 0; j < d; ++j) {
      for (std::size_t i = 0; i < d; ++i) {
        double acc = 0.0;
        for (std::size_t k = 0; k < dk; ++k) {
          acc += static_cast<double>(mha.wv.weight.w(h * dk + k, i)) *
                 static_cast<double>(mha.wo.weight.w(j, h * dk + k));
        }
        out.wvo.w(h * d + j, i) = static_cast<float>(acc);
      }
    }
  }
  return out;
}

tensor::MatrixF FoldedMultiHeadAttention::forward(const tensor::MatrixF& x) {
  const std::size_t s = x.rows();
  const std::size_t d = d_model_;
  const std::size_t dk = d / heads_;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk));

  x_ = x;
  q_ = wq.forward(x);
  k_ = wk.forward(x);

  // M = X · W_VOᵀ (s × H·d).
  m_ = tensor::MatrixF(s, heads_ * d);
  for (std::size_t t = 0; t < s; ++t) {
    for (std::size_t j = 0; j < heads_ * d; ++j) {
      float acc = 0.0f;
      for (std::size_t i = 0; i < d; ++i) acc += x(t, i) * wvo.w(j, i);
      m_(t, j) = acc;
    }
  }

  // Scores per head, then Output = Σ_h S_h · M_h.
  s_ = tensor::MatrixF(heads_ * s, s);
  tensor::MatrixF out(s, d);
  for (std::size_t h = 0; h < heads_; ++h) {
    for (std::size_t i = 0; i < s; ++i) {
      float mx = -std::numeric_limits<float>::infinity();
      for (std::size_t j = 0; j < s; ++j) {
        float acc = 0.0f;
        for (std::size_t c = 0; c < dk; ++c) {
          acc += q_(i, h * dk + c) * k_(j, h * dk + c);
        }
        acc *= scale;
        if (causal_ && j > i) acc = -std::numeric_limits<float>::infinity();
        s_(h * s + i, j) = acc;
        mx = std::max(mx, acc);
      }
      float sum = 0.0f;
      for (std::size_t j = 0; j < s; ++j) {
        float& e = s_(h * s + i, j);
        e = std::exp(e - mx);
        sum += e;
      }
      for (std::size_t j = 0; j < s; ++j) s_(h * s + i, j) /= sum;
      for (std::size_t c = 0; c < d; ++c) {
        float acc = 0.0f;
        for (std::size_t j = 0; j < s; ++j) {
          acc += s_(h * s + i, j) * m_(j, h * d + c);
        }
        out(i, c) += acc;
      }
    }
  }
  return out;
}

tensor::MatrixF FoldedMultiHeadAttention::backward(const tensor::MatrixF& dy) {
  const std::size_t s = dy.rows();
  const std::size_t d = d_model_;
  const std::size_t dk = d / heads_;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk));

  tensor::MatrixF dm(s, heads_ * d);
  tensor::MatrixF dq(s, d), dkm(s, d);

  for (std::size_t h = 0; h < heads_; ++h) {
    // dM_h = S_hᵀ · dY.
    for (std::size_t j = 0; j < s; ++j) {
      for (std::size_t c = 0; c < d; ++c) {
        float acc = 0.0f;
        for (std::size_t i = 0; i < s; ++i) {
          acc += s_(h * s + i, j) * dy(i, c);
        }
        dm(j, h * d + c) = acc;
      }
    }
    // dS, softmax backward, dQ/dK.
    for (std::size_t i = 0; i < s; ++i) {
      std::vector<float> ds(s);
      for (std::size_t j = 0; j < s; ++j) {
        float acc = 0.0f;
        for (std::size_t c = 0; c < d; ++c) {
          acc += dy(i, c) * m_(j, h * d + c);
        }
        ds[j] = acc;
      }
      float dot = 0.0f;
      for (std::size_t j = 0; j < s; ++j) dot += ds[j] * s_(h * s + i, j);
      for (std::size_t j = 0; j < s; ++j) {
        ds[j] = s_(h * s + i, j) * (ds[j] - dot);
      }
      for (std::size_t j = 0; j < s; ++j) {
        if (causal_ && j > i) continue;
        const float dv = ds[j] * scale;
        for (std::size_t c = 0; c < dk; ++c) {
          dq(i, h * dk + c) += dv * k_(j, h * dk + c);
          dkm(j, h * dk + c) += dv * q_(i, h * dk + c);
        }
      }
    }
  }

  // dW_VO += dMᵀ·X ; dx += dM·W_VO (per row block).
  tensor::MatrixF dx(s, d);
  for (std::size_t j = 0; j < heads_ * d; ++j) {
    for (std::size_t i = 0; i < d; ++i) {
      float acc = 0.0f;
      for (std::size_t t = 0; t < s; ++t) acc += dm(t, j) * x_(t, i);
      wvo.g(j, i) += acc;
    }
  }
  for (std::size_t t = 0; t < s; ++t) {
    for (std::size_t i = 0; i < d; ++i) {
      float acc = 0.0f;
      for (std::size_t j = 0; j < heads_ * d; ++j) {
        acc += dm(t, j) * wvo.w(j, i);
      }
      dx(t, i) = acc;
    }
  }

  const tensor::MatrixF dxq = wq.backward(dq);
  const tensor::MatrixF dxk = wk.backward(dkm);
  for (std::size_t i = 0; i < dx.size(); ++i) {
    dx.flat()[i] += dxq.flat()[i] + dxk.flat()[i];
  }
  return dx;
}

void FoldedMultiHeadAttention::zero_grad() {
  wq.zero_grad();
  wk.zero_grad();
  wvo.zero_grad();
}

void FoldedMultiHeadAttention::collect(std::vector<Param*>& out) {
  wq.collect(out);
  wk.collect(out);
  out.push_back(&wvo);
}

void FoldedMultiHeadAttention::bias_step(float lr, float beta1, float beta2,
                                         float eps, long t) {
  wq.bias_step(lr, beta1, beta2, eps, t);
  wk.bias_step(lr, beta1, beta2, eps, t);
}

}  // namespace et::train
