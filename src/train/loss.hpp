// Losses: per-position softmax cross-entropy (language modelling), single
// softmax cross-entropy (classification), MSE (STS-B-style regression).
// Each returns the scalar loss and fills the logit gradient.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/matrix.hpp"

namespace et::train {

/// LM loss: logits (seq × vocab) vs targets (seq). Mean over positions.
[[nodiscard]] float cross_entropy_lm(const tensor::MatrixF& logits,
                                     std::span<const std::int32_t> targets,
                                     tensor::MatrixF& dlogits);

/// Classification loss: logits (1 × classes) vs a single label.
[[nodiscard]] float cross_entropy_cls(const tensor::MatrixF& logits,
                                      std::int32_t label,
                                      tensor::MatrixF& dlogits);

/// Regression loss: logits (1 × 1) vs a scalar target.
[[nodiscard]] float mse(const tensor::MatrixF& logits, float target,
                        tensor::MatrixF& dlogits);

/// argmax of a (1 × classes) logit row.
[[nodiscard]] std::int32_t argmax_row(const tensor::MatrixF& logits,
                                      std::size_t row = 0);

}  // namespace et::train
