// Manual-backprop layers for the training-side transformer.
// Each layer caches what its backward pass needs during forward; the
// training loop is strictly forward-then-backward per sample, gradients
// accumulate across a batch, then the optimizer steps.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "train/param.hpp"

namespace et::train {

/// y = x·Wᵀ + b.
class Linear {
 public:
  Linear() = default;
  Linear(std::size_t out_features, std::size_t in_features,
         std::uint64_t seed);

  [[nodiscard]] tensor::MatrixF forward(const tensor::MatrixF& x);
  /// Returns dL/dx; accumulates into weight.g / bias_g.
  [[nodiscard]] tensor::MatrixF backward(const tensor::MatrixF& dy);

  Param weight;  ///< (out × in)
  std::vector<float> bias, bias_g, bias_m, bias_v;

  void zero_grad();
  void collect(std::vector<Param*>& out) { out.push_back(&weight); }
  /// Adam step for the bias vector (Params handled by AdamW).
  void bias_step(float lr, float beta1, float beta2, float eps, long t);

 private:
  tensor::MatrixF x_;  // cached input
};

/// Row-wise layer normalization with affine parameters.
class LayerNorm {
 public:
  LayerNorm() = default;
  explicit LayerNorm(std::size_t dim);

  [[nodiscard]] tensor::MatrixF forward(const tensor::MatrixF& x);
  [[nodiscard]] tensor::MatrixF backward(const tensor::MatrixF& dy);

  std::vector<float> gamma, beta, gamma_g, beta_g;

  void zero_grad();
  void step(float lr);  ///< plain SGD on the (tiny) affine parameters

 private:
  tensor::MatrixF xhat_;
  std::vector<float> inv_std_;
  float eps_ = 1e-5f;
};

/// GELU (tanh approximation).
class Gelu {
 public:
  [[nodiscard]] tensor::MatrixF forward(const tensor::MatrixF& x);
  [[nodiscard]] tensor::MatrixF backward(const tensor::MatrixF& dy);

 private:
  tensor::MatrixF x_;
};

/// Token embedding with sinusoidal positional encoding added.
class Embedding {
 public:
  Embedding() = default;
  Embedding(std::size_t vocab, std::size_t dim, std::uint64_t seed);

  [[nodiscard]] tensor::MatrixF forward(std::span<const std::int32_t> tokens,
                                        bool add_positional = true);
  void backward(const tensor::MatrixF& dy);

  Param table;  ///< (vocab × dim)
  void zero_grad() { table.zero_grad(); }
  void collect(std::vector<Param*>& out) { out.push_back(&table); }

 private:
  std::vector<std::int32_t> tokens_;
};

}  // namespace et::train
