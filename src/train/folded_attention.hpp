// "E.T. for training" (§7): a multi-head attention layer whose value/output
// path is the *pre-computed* matrix W_VO = ‖ₕ (W_V,hᵀ·W_O,hᵀ) itself —
// "the new architecture will not have W_V and W_O matrices anymore. It
// will directly use [the folded] matrix... the backward propagation phase
// will automatically update this new matrix as opposed to the prior ones."
//
// Forward:  M = X·W_VOᵀ (s × H·d, head-major blocks),
//           Output = Σ_h softmax(Q_h·K_hᵀ/√d_k) · M_h.
// The layer carries H·d² parameters in W_VO versus 2·d² for W_V+W_O; the
// §4.3 row pruning is what makes the folded form economical at inference.
#pragma once

#include "train/layers.hpp"

namespace et::train {

class MultiHeadAttention;  // fold() source

class FoldedMultiHeadAttention {
 public:
  FoldedMultiHeadAttention() = default;
  FoldedMultiHeadAttention(std::size_t d_model, std::size_t num_heads,
                           std::uint64_t seed, bool causal);

  /// Initialize from a conventionally-parameterized layer by folding its
  /// trained W_V/W_O (the §7 migration path). Q/K weights and biases copy
  /// over; the result computes the same function (attention biases on
  /// W_V/W_O excepted — fold() requires them to be zero).
  static FoldedMultiHeadAttention fold(const MultiHeadAttention& mha);

  [[nodiscard]] tensor::MatrixF forward(const tensor::MatrixF& x);
  [[nodiscard]] tensor::MatrixF backward(const tensor::MatrixF& dy);

  void zero_grad();
  void collect(std::vector<Param*>& out);
  void bias_step(float lr, float beta1, float beta2, float eps, long t);

  Linear wq, wk;
  Param wvo;  ///< (H·d_model) × d_model, head-major row blocks

  [[nodiscard]] std::size_t d_model() const noexcept { return d_model_; }
  [[nodiscard]] std::size_t num_heads() const noexcept { return heads_; }

 private:
  std::size_t d_model_ = 0;
  std::size_t heads_ = 0;
  bool causal_ = true;

  tensor::MatrixF x_, q_, k_, m_, s_;
};

}  // namespace et::train
