// Multi-head self-attention with full manual backward — the training-side
// counterpart of src/core's inference operators.
#pragma once

#include "train/layers.hpp"

namespace et::train {

class MultiHeadAttention {
 public:
  MultiHeadAttention() = default;
  MultiHeadAttention(std::size_t d_model, std::size_t num_heads,
                     std::uint64_t seed, bool causal);

  [[nodiscard]] tensor::MatrixF forward(const tensor::MatrixF& x);
  [[nodiscard]] tensor::MatrixF backward(const tensor::MatrixF& dy);

  void zero_grad();
  void collect(std::vector<Param*>& out);
  void bias_step(float lr, float beta1, float beta2, float eps, long t);

  Linear wq, wk, wv, wo;
  [[nodiscard]] std::size_t d_model() const noexcept { return d_model_; }
  [[nodiscard]] std::size_t num_heads() const noexcept { return heads_; }
  [[nodiscard]] bool causal() const noexcept { return causal_; }

 private:
  std::size_t d_model_ = 0;
  std::size_t heads_ = 0;
  bool causal_ = true;

  // forward caches
  tensor::MatrixF q_, k_, v_, s_, z_;
};

}  // namespace et::train
