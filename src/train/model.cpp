#include "train/model.hpp"

#include <cassert>

namespace et::train {

// ------------------------------------------------------- EncoderLayer ----

EncoderLayer::EncoderLayer(const TrainModelConfig& cfg, std::uint64_t seed)
    : mha(cfg.d_model, cfg.num_heads, seed, cfg.causal),
      ln1(cfg.d_model),
      ln2(cfg.d_model),
      ff1(cfg.d_ff, cfg.d_model, seed + 21),
      ff2(cfg.d_model, cfg.d_ff, seed + 22) {}

tensor::MatrixF EncoderLayer::forward(const tensor::MatrixF& x) {
  attn_in_ = x;
  tensor::MatrixF a = mha.forward(x);
  for (std::size_t i = 0; i < a.size(); ++i) a.flat()[i] += x.flat()[i];
  tensor::MatrixF h = ln1.forward(a);

  mlp_in_ = h;
  tensor::MatrixF m = ff2.forward(gelu.forward(ff1.forward(h)));
  for (std::size_t i = 0; i < m.size(); ++i) m.flat()[i] += h.flat()[i];
  return ln2.forward(m);
}

tensor::MatrixF EncoderLayer::backward(const tensor::MatrixF& dy) {
  tensor::MatrixF dm = ln2.backward(dy);
  // residual split: dm flows into the MLP and straight through.
  tensor::MatrixF dh = ff1.backward(gelu.backward(ff2.backward(dm)));
  for (std::size_t i = 0; i < dh.size(); ++i) dh.flat()[i] += dm.flat()[i];

  tensor::MatrixF da = ln1.backward(dh);
  tensor::MatrixF dx = mha.backward(da);
  for (std::size_t i = 0; i < dx.size(); ++i) dx.flat()[i] += da.flat()[i];
  return dx;
}

void EncoderLayer::zero_grad() {
  mha.zero_grad();
  ln1.zero_grad();
  ln2.zero_grad();
  ff1.zero_grad();
  ff2.zero_grad();
}

void EncoderLayer::collect(std::vector<Param*>& out) {
  mha.collect(out);
  ff1.collect(out);
  ff2.collect(out);
}

void EncoderLayer::aux_step(float lr, float beta1, float beta2, float eps,
                            long t) {
  mha.bias_step(lr, beta1, beta2, eps, t);
  ff1.bias_step(lr, beta1, beta2, eps, t);
  ff2.bias_step(lr, beta1, beta2, eps, t);
  ln1.step(lr);
  ln2.step(lr);
}

// --------------------------------------------------- TransformerModel ----

TransformerModel::TransformerModel(const TrainModelConfig& cfg,
                                   std::uint64_t seed)
    : embedding(cfg.vocab_size, cfg.d_model, seed), cfg_(cfg) {
  layers_.reserve(cfg.num_layers);
  for (std::size_t l = 0; l < cfg.num_layers; ++l) {
    layers_.emplace_back(cfg, seed + 100 * (l + 1));
  }
}

tensor::MatrixF TransformerModel::encode(
    std::span<const std::int32_t> tokens) {
  tensor::MatrixF h = embedding.forward(tokens);
  for (auto& layer : layers_) h = layer.forward(h);
  return h;
}

void TransformerModel::backward_trunk(const tensor::MatrixF& dy) {
  tensor::MatrixF d = dy;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    d = it->backward(d);
  }
  embedding.backward(d);
}

void TransformerModel::zero_grad() {
  embedding.zero_grad();
  for (auto& layer : layers_) layer.zero_grad();
}

std::vector<Param*> TransformerModel::params() {
  std::vector<Param*> out;
  embedding.collect(out);
  for (auto& layer : layers_) layer.collect(out);
  return out;
}

void TransformerModel::aux_step(float lr, float beta1, float beta2, float eps,
                                long t) {
  for (auto& layer : layers_) layer.aux_step(lr, beta1, beta2, eps, t);
}

// ------------------------------------------------------ TransformerLM ----

TransformerLM::TransformerLM(const TrainModelConfig& cfg, std::uint64_t seed)
    : trunk(cfg, seed), head(cfg.vocab_size, cfg.d_model, seed + 999) {}

tensor::MatrixF TransformerLM::forward(std::span<const std::int32_t> tokens) {
  return head.forward(trunk.encode(tokens));
}

void TransformerLM::backward(const tensor::MatrixF& dlogits) {
  trunk.backward_trunk(head.backward(dlogits));
}

void TransformerLM::zero_grad() {
  trunk.zero_grad();
  head.zero_grad();
}

std::vector<Param*> TransformerLM::params() {
  auto out = trunk.params();
  head.collect(out);
  return out;
}

void TransformerLM::aux_step(float lr, float beta1, float beta2, float eps,
                             long t) {
  trunk.aux_step(lr, beta1, beta2, eps, t);
  head.bias_step(lr, beta1, beta2, eps, t);
}

// ---------------------------------------------- TransformerClassifier ----

TransformerClassifier::TransformerClassifier(const TrainModelConfig& cfg,
                                             std::size_t num_classes,
                                             std::uint64_t seed)
    : trunk(cfg, seed), head(num_classes, cfg.d_model, seed + 999) {}

tensor::MatrixF TransformerClassifier::forward(
    std::span<const std::int32_t> tokens) {
  const tensor::MatrixF h = trunk.encode(tokens);
  seq_len_ = h.rows();
  // Mean pool over positions.
  tensor::MatrixF pooled(1, h.cols());
  for (std::size_t c = 0; c < h.cols(); ++c) {
    float acc = 0.0f;
    for (std::size_t r = 0; r < h.rows(); ++r) acc += h(r, c);
    pooled(0, c) = acc / static_cast<float>(h.rows());
  }
  return head.forward(pooled);
}

void TransformerClassifier::backward(const tensor::MatrixF& dlogits) {
  const tensor::MatrixF dpooled = head.backward(dlogits);
  tensor::MatrixF dh(seq_len_, dpooled.cols());
  const float inv = 1.0f / static_cast<float>(seq_len_);
  for (std::size_t r = 0; r < seq_len_; ++r) {
    for (std::size_t c = 0; c < dpooled.cols(); ++c) {
      dh(r, c) = dpooled(0, c) * inv;
    }
  }
  trunk.backward_trunk(dh);
}

void TransformerClassifier::zero_grad() {
  trunk.zero_grad();
  head.zero_grad();
}

std::vector<Param*> TransformerClassifier::params() {
  auto out = trunk.params();
  head.collect(out);
  return out;
}

void TransformerClassifier::aux_step(float lr, float beta1, float beta2,
                                     float eps, long t) {
  trunk.aux_step(lr, beta1, beta2, eps, t);
  head.bias_step(lr, beta1, beta2, eps, t);
}

}  // namespace et::train
