#include "train/loss.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace et::train {

namespace {
/// softmax of one row in place; returns log(sum(exp)) + max for log-prob.
void softmax_row(tensor::MatrixF& m, std::size_t r) {
  float mx = -std::numeric_limits<float>::infinity();
  for (std::size_t c = 0; c < m.cols(); ++c) mx = std::max(mx, m(r, c));
  float sum = 0.0f;
  for (std::size_t c = 0; c < m.cols(); ++c) {
    m(r, c) = std::exp(m(r, c) - mx);
    sum += m(r, c);
  }
  for (std::size_t c = 0; c < m.cols(); ++c) m(r, c) /= sum;
}
}  // namespace

float cross_entropy_lm(const tensor::MatrixF& logits,
                       std::span<const std::int32_t> targets,
                       tensor::MatrixF& dlogits) {
  assert(logits.rows() == targets.size());
  dlogits = logits;
  float loss = 0.0f;
  const float inv_n = 1.0f / static_cast<float>(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    softmax_row(dlogits, r);
    const auto t = static_cast<std::size_t>(targets[r]);
    assert(t < logits.cols());
    loss -= std::log(std::max(dlogits(r, t), 1e-12f));
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      dlogits(r, c) *= inv_n;
    }
    dlogits(r, t) -= inv_n;
  }
  return loss * inv_n;
}

float cross_entropy_cls(const tensor::MatrixF& logits, std::int32_t label,
                        tensor::MatrixF& dlogits) {
  assert(logits.rows() == 1);
  dlogits = logits;
  softmax_row(dlogits, 0);
  const auto t = static_cast<std::size_t>(label);
  assert(t < logits.cols());
  const float loss = -std::log(std::max(dlogits(0, t), 1e-12f));
  dlogits(0, t) -= 1.0f;
  return loss;
}

float mse(const tensor::MatrixF& logits, float target,
          tensor::MatrixF& dlogits) {
  assert(logits.rows() == 1 && logits.cols() == 1);
  dlogits = tensor::MatrixF(1, 1);
  const float diff = logits(0, 0) - target;
  dlogits(0, 0) = 2.0f * diff;
  return diff * diff;
}

std::int32_t argmax_row(const tensor::MatrixF& logits, std::size_t row) {
  std::size_t best = 0;
  for (std::size_t c = 1; c < logits.cols(); ++c) {
    if (logits(row, c) > logits(row, best)) best = c;
  }
  return static_cast<std::int32_t>(best);
}

}  // namespace et::train
