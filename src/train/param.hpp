// Trainable parameters and the AdamW optimizer (the paper fine-tunes with
// AdamW — see the artifact appendix).
//
// The training side of the repo is a compact manual-backprop framework in
// FP32 on the host: the pruning algorithms of §4 need gradients and a
// training loop, not the simulated device. Inference-side latency always
// comes from src/core + src/gpusim, mirroring how the paper trains in
// PyTorch but measures a separate CUDA implementation.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "sparse/mask.hpp"
#include "tensor/matrix.hpp"

namespace et::train {

/// A trainable matrix with gradient and Adam moments. An optional pruning
/// mask freezes pruned entries: their gradients are zeroed every step and
/// their values stay 0 (Fig. 6 step (vi), "retrain the non-zero entries").
struct Param {
  tensor::MatrixF w;
  tensor::MatrixF g;
  tensor::MatrixF adam_m;
  tensor::MatrixF adam_v;
  const sparse::Mask* mask = nullptr;  ///< not owned; nullptr = dense

  Param() = default;
  Param(std::size_t rows, std::size_t cols)
      : w(rows, cols), g(rows, cols), adam_m(rows, cols), adam_v(rows, cols) {}

  void zero_grad() { g.fill(0.0f); }

  /// Apply the mask to both weight and gradient (no-op when unmasked).
  void enforce_mask() {
    if (mask == nullptr) return;
    for (std::size_t i = 0; i < w.size(); ++i) {
      if (mask->flat()[i] == 0) {
        w.flat()[i] = 0.0f;
        g.flat()[i] = 0.0f;
      }
    }
  }
};

struct AdamWConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.01f;
};

/// Decoupled-weight-decay Adam over a set of Params.
class AdamW {
 public:
  explicit AdamW(AdamWConfig cfg = {}) : cfg_(cfg) {}

  void set_lr(float lr) noexcept { cfg_.lr = lr; }
  [[nodiscard]] float lr() const noexcept { return cfg_.lr; }

  void step(const std::vector<Param*>& params) {
    ++t_;
    const float bc1 = 1.0f - std::pow(cfg_.beta1, static_cast<float>(t_));
    const float bc2 = 1.0f - std::pow(cfg_.beta2, static_cast<float>(t_));
    for (Param* p : params) {
      p->enforce_mask();
      for (std::size_t i = 0; i < p->w.size(); ++i) {
        const float g = p->g.flat()[i];
        float& m = p->adam_m.flat()[i];
        float& v = p->adam_v.flat()[i];
        m = cfg_.beta1 * m + (1.0f - cfg_.beta1) * g;
        v = cfg_.beta2 * v + (1.0f - cfg_.beta2) * g * g;
        const float mhat = m / bc1;
        const float vhat = v / bc2;
        float& w = p->w.flat()[i];
        w -= cfg_.lr * (mhat / (std::sqrt(vhat) + cfg_.eps) +
                        cfg_.weight_decay * w);
      }
      p->enforce_mask();
    }
  }

 private:
  AdamWConfig cfg_;
  long t_ = 0;
};

}  // namespace et::train
