// Learning-rate schedules. The original Transformer trains with the
// inverse-square-root warmup schedule; BERT fine-tuning (the paper's
// §5.1 recipe: lr selected in [3e-5, 5e-5], 4 epochs) uses linear decay
// with warmup. Both are provided; the bench harness defaults to
// warmup + linear decay, which also stabilizes the small-model training
// used for the accuracy-side experiments.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace et::train {

/// Linear warmup to `peak_lr` over `warmup_steps`, then linear decay to
/// `floor_lr` at `total_steps`.
class WarmupLinearDecay {
 public:
  WarmupLinearDecay(float peak_lr, std::size_t warmup_steps,
                    std::size_t total_steps, float floor_lr = 0.0f)
      : peak_(peak_lr),
        warmup_(std::max<std::size_t>(warmup_steps, 1)),
        total_(std::max(total_steps, warmup_steps + 1)),
        floor_(floor_lr) {}

  [[nodiscard]] float lr(std::size_t step) const {
    if (step < warmup_) {
      return peak_ * static_cast<float>(step + 1) /
             static_cast<float>(warmup_);
    }
    const float progress =
        static_cast<float>(std::min(step, total_) - warmup_) /
        static_cast<float>(total_ - warmup_);
    return floor_ + (peak_ - floor_) * (1.0f - progress);
  }

 private:
  float peak_;
  std::size_t warmup_;
  std::size_t total_;
  float floor_;
};

/// The "Attention is all you need" schedule:
/// lr = d_model^-0.5 · min(step^-0.5, step · warmup^-1.5).
class NoamSchedule {
 public:
  NoamSchedule(std::size_t d_model, std::size_t warmup_steps,
               float scale = 1.0f)
      : d_model_(static_cast<float>(d_model)),
        warmup_(static_cast<float>(std::max<std::size_t>(warmup_steps, 1))),
        scale_(scale) {}

  [[nodiscard]] float lr(std::size_t step) const {
    const float s = static_cast<float>(step + 1);
    return scale_ / std::sqrt(d_model_) *
           std::min(1.0f / std::sqrt(s), s / std::pow(warmup_, 1.5f));
  }

 private:
  float d_model_;
  float warmup_;
  float scale_;
};

}  // namespace et::train
