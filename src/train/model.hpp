// Training-side transformer models: a next-token language model (the
// WikiText-2 experiments) and a sequence classifier/regressor (the GLUE
// experiments). Both are encoder stacks in the Fig. 1 layout.
#pragma once

#include <memory>
#include <span>

#include "train/attention_layer.hpp"
#include "train/layers.hpp"

namespace et::train {

struct TrainModelConfig {
  std::size_t vocab_size = 256;
  std::size_t d_model = 64;
  std::size_t num_heads = 4;
  std::size_t d_ff = 256;
  std::size_t num_layers = 2;
  bool causal = true;  ///< LM uses the causal mask; classifiers do not
};

class EncoderLayer {
 public:
  EncoderLayer() = default;
  EncoderLayer(const TrainModelConfig& cfg, std::uint64_t seed);

  [[nodiscard]] tensor::MatrixF forward(const tensor::MatrixF& x);
  [[nodiscard]] tensor::MatrixF backward(const tensor::MatrixF& dy);

  void zero_grad();
  void collect(std::vector<Param*>& out);
  void aux_step(float lr, float beta1, float beta2, float eps, long t);

  MultiHeadAttention mha;
  LayerNorm ln1, ln2;
  Linear ff1, ff2;
  Gelu gelu;

 private:
  tensor::MatrixF attn_in_, mlp_in_;
};

/// Shared encoder trunk + task-specific heads.
class TransformerModel {
 public:
  TransformerModel() = default;
  TransformerModel(const TrainModelConfig& cfg, std::uint64_t seed);

  /// Token ids -> encoder output (seq × d_model).
  [[nodiscard]] tensor::MatrixF encode(std::span<const std::int32_t> tokens);
  /// Backward through the trunk given dL/d(encoder output).
  void backward_trunk(const tensor::MatrixF& dy);

  void zero_grad();
  /// All matrix Params (weights + embedding table), for AdamW.
  [[nodiscard]] std::vector<Param*> params();
  /// Step the non-Param parameters (biases, layernorm affine).
  void aux_step(float lr, float beta1, float beta2, float eps, long t);

  [[nodiscard]] const TrainModelConfig& config() const noexcept {
    return cfg_;
  }
  [[nodiscard]] std::vector<EncoderLayer>& layers() noexcept {
    return layers_;
  }
  Embedding embedding;

 private:
  TrainModelConfig cfg_;
  std::vector<EncoderLayer> layers_;
};

/// Next-token language model: encoder + tied-width output projection.
class TransformerLM {
 public:
  TransformerLM() = default;
  TransformerLM(const TrainModelConfig& cfg, std::uint64_t seed);

  /// Returns per-position logits (seq × vocab).
  [[nodiscard]] tensor::MatrixF forward(std::span<const std::int32_t> tokens);
  void backward(const tensor::MatrixF& dlogits);

  void zero_grad();
  [[nodiscard]] std::vector<Param*> params();
  void aux_step(float lr, float beta1, float beta2, float eps, long t);

  TransformerModel trunk;
  Linear head;  ///< (vocab × d_model)
};

/// Sequence classifier (num_classes > 1) or regressor (num_classes == 1):
/// encoder + mean pool + linear head.
class TransformerClassifier {
 public:
  TransformerClassifier() = default;
  TransformerClassifier(const TrainModelConfig& cfg, std::size_t num_classes,
                        std::uint64_t seed);

  /// Returns logits (1 × num_classes).
  [[nodiscard]] tensor::MatrixF forward(std::span<const std::int32_t> tokens);
  void backward(const tensor::MatrixF& dlogits);

  void zero_grad();
  [[nodiscard]] std::vector<Param*> params();
  void aux_step(float lr, float beta1, float beta2, float eps, long t);

  TransformerModel trunk;
  Linear head;

 private:
  std::size_t seq_len_ = 0;
};

}  // namespace et::train
