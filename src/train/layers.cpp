#include "train/layers.hpp"

#include <cassert>
#include <cmath>

#include "nn/positional.hpp"
#include "tensor/random.hpp"

namespace et::train {

// ------------------------------------------------------------- Linear ----

Linear::Linear(std::size_t out_features, std::size_t in_features,
               std::uint64_t seed)
    : weight(out_features, in_features) {
  tensor::fill_xavier(weight.w, seed);
  bias.assign(out_features, 0.0f);
  bias_g.assign(out_features, 0.0f);
  bias_m.assign(out_features, 0.0f);
  bias_v.assign(out_features, 0.0f);
}

tensor::MatrixF Linear::forward(const tensor::MatrixF& x) {
  assert(x.cols() == weight.w.cols());
  x_ = x;
  tensor::MatrixF y(x.rows(), weight.w.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < weight.w.rows(); ++j) {
      float acc = bias[j];
      for (std::size_t k = 0; k < x.cols(); ++k) {
        acc += x(i, k) * weight.w(j, k);
      }
      y(i, j) = acc;
    }
  }
  return y;
}

tensor::MatrixF Linear::backward(const tensor::MatrixF& dy) {
  assert(dy.rows() == x_.rows() && dy.cols() == weight.w.rows());
  // dW += dyᵀ·x ; db += Σ_rows dy ; dx = dy·W
  for (std::size_t j = 0; j < weight.w.rows(); ++j) {
    for (std::size_t i = 0; i < dy.rows(); ++i) {
      bias_g[j] += dy(i, j);
      const float d = dy(i, j);
      for (std::size_t k = 0; k < x_.cols(); ++k) {
        weight.g(j, k) += d * x_(i, k);
      }
    }
  }
  tensor::MatrixF dx(x_.rows(), x_.cols());
  for (std::size_t i = 0; i < dx.rows(); ++i) {
    for (std::size_t k = 0; k < dx.cols(); ++k) {
      float acc = 0.0f;
      for (std::size_t j = 0; j < weight.w.rows(); ++j) {
        acc += dy(i, j) * weight.w(j, k);
      }
      dx(i, k) = acc;
    }
  }
  return dx;
}

void Linear::zero_grad() {
  weight.zero_grad();
  std::fill(bias_g.begin(), bias_g.end(), 0.0f);
}

void Linear::bias_step(float lr, float beta1, float beta2, float eps, long t) {
  const float bc1 = 1.0f - std::pow(beta1, static_cast<float>(t));
  const float bc2 = 1.0f - std::pow(beta2, static_cast<float>(t));
  for (std::size_t i = 0; i < bias.size(); ++i) {
    bias_m[i] = beta1 * bias_m[i] + (1.0f - beta1) * bias_g[i];
    bias_v[i] = beta2 * bias_v[i] + (1.0f - beta2) * bias_g[i] * bias_g[i];
    bias[i] -= lr * (bias_m[i] / bc1) / (std::sqrt(bias_v[i] / bc2) + eps);
  }
}

// ---------------------------------------------------------- LayerNorm ----

LayerNorm::LayerNorm(std::size_t dim) {
  gamma.assign(dim, 1.0f);
  beta.assign(dim, 0.0f);
  gamma_g.assign(dim, 0.0f);
  beta_g.assign(dim, 0.0f);
}

tensor::MatrixF LayerNorm::forward(const tensor::MatrixF& x) {
  assert(x.cols() == gamma.size());
  xhat_ = tensor::MatrixF(x.rows(), x.cols());
  inv_std_.assign(x.rows(), 0.0f);
  tensor::MatrixF y(x.rows(), x.cols());
  const auto n = static_cast<float>(x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    float mean = 0.0f;
    for (std::size_t c = 0; c < x.cols(); ++c) mean += x(r, c);
    mean /= n;
    float var = 0.0f;
    for (std::size_t c = 0; c < x.cols(); ++c) {
      const float d = x(r, c) - mean;
      var += d * d;
    }
    var /= n;
    const float inv = 1.0f / std::sqrt(var + eps_);
    inv_std_[r] = inv;
    for (std::size_t c = 0; c < x.cols(); ++c) {
      xhat_(r, c) = (x(r, c) - mean) * inv;
      y(r, c) = xhat_(r, c) * gamma[c] + beta[c];
    }
  }
  return y;
}

tensor::MatrixF LayerNorm::backward(const tensor::MatrixF& dy) {
  const auto n = static_cast<float>(dy.cols());
  tensor::MatrixF dx(dy.rows(), dy.cols());
  for (std::size_t r = 0; r < dy.rows(); ++r) {
    float sum_dxhat = 0.0f;
    float sum_dxhat_xhat = 0.0f;
    for (std::size_t c = 0; c < dy.cols(); ++c) {
      gamma_g[c] += dy(r, c) * xhat_(r, c);
      beta_g[c] += dy(r, c);
      const float dxhat = dy(r, c) * gamma[c];
      sum_dxhat += dxhat;
      sum_dxhat_xhat += dxhat * xhat_(r, c);
    }
    for (std::size_t c = 0; c < dy.cols(); ++c) {
      const float dxhat = dy(r, c) * gamma[c];
      dx(r, c) = inv_std_[r] / n *
                 (n * dxhat - sum_dxhat - xhat_(r, c) * sum_dxhat_xhat);
    }
  }
  return dx;
}

void LayerNorm::zero_grad() {
  std::fill(gamma_g.begin(), gamma_g.end(), 0.0f);
  std::fill(beta_g.begin(), beta_g.end(), 0.0f);
}

void LayerNorm::step(float lr) {
  for (std::size_t i = 0; i < gamma.size(); ++i) {
    gamma[i] -= lr * gamma_g[i];
    beta[i] -= lr * beta_g[i];
  }
}

// --------------------------------------------------------------- Gelu ----

namespace {
constexpr float kSqrt2OverPi = 0.7978845608028654f;
}

tensor::MatrixF Gelu::forward(const tensor::MatrixF& x) {
  x_ = x;
  tensor::MatrixF y(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float v = x.flat()[i];
    const float inner = kSqrt2OverPi * (v + 0.044715f * v * v * v);
    y.flat()[i] = 0.5f * v * (1.0f + std::tanh(inner));
  }
  return y;
}

tensor::MatrixF Gelu::backward(const tensor::MatrixF& dy) {
  tensor::MatrixF dx(dy.rows(), dy.cols());
  for (std::size_t i = 0; i < dy.size(); ++i) {
    const float v = x_.flat()[i];
    const float inner = kSqrt2OverPi * (v + 0.044715f * v * v * v);
    const float t = std::tanh(inner);
    const float dinner = kSqrt2OverPi * (1.0f + 3.0f * 0.044715f * v * v);
    const float dgelu = 0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * dinner;
    dx.flat()[i] = dy.flat()[i] * dgelu;
  }
  return dx;
}

// ---------------------------------------------------------- Embedding ----

Embedding::Embedding(std::size_t vocab, std::size_t dim, std::uint64_t seed)
    : table(vocab, dim) {
  tensor::fill_embedding(table.w, seed);
}

tensor::MatrixF Embedding::forward(std::span<const std::int32_t> tokens,
                                   bool add_positional) {
  tokens_.assign(tokens.begin(), tokens.end());
  tensor::MatrixF x(tokens.size(), table.w.cols());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const auto id = static_cast<std::size_t>(tokens[i]);
    assert(id < table.w.rows());
    for (std::size_t c = 0; c < table.w.cols(); ++c) {
      x(i, c) = table.w(id, c);
    }
  }
  if (add_positional) nn::add_positional_encoding(x);
  return x;
}

void Embedding::backward(const tensor::MatrixF& dy) {
  assert(dy.rows() == tokens_.size());
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    const auto id = static_cast<std::size_t>(tokens_[i]);
    for (std::size_t c = 0; c < dy.cols(); ++c) {
      table.g(id, c) += dy(i, c);
    }
  }
}

}  // namespace et::train
