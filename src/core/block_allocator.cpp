#include "core/block_allocator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

namespace et::core {

// ---------------------------------------------------------------------------
// BlockAllocator

namespace {

/// Symmetric int8 quantization of one row against its own amax — the
/// same scheme as quant::quantize_weight, restated here so core stays
/// below et_quant in the library graph. A pure function of `src`:
/// deterministic at any thread count, identical whichever slot writes
/// the row.
void quantize_row(std::span<const float> src, std::int8_t* dst,
                  float& scale) {
  float amax = 0.0f;
  for (const float v : src) amax = std::max(amax, std::abs(v));
  scale = amax > 0.0f ? amax / 127.0f : 1.0f;
  for (std::size_t c = 0; c < src.size(); ++c) {
    dst[c] = static_cast<std::int8_t>(
        std::clamp(std::round(src[c] / scale), -127.0f, 127.0f));
  }
}

}  // namespace

BlockAllocator::BlockAllocator(std::size_t num_blocks, std::size_t block_tokens,
                               std::size_t k_width,
                               const std::vector<std::size_t>& v_widths,
                               KvPrecision precision)
    : block_tokens_(block_tokens),
      k_width_(k_width),
      precision_(precision),
      v_widths_(v_widths) {
  if (num_blocks == 0 || block_tokens == 0 || k_width == 0) {
    throw std::invalid_argument(
        "BlockAllocator: num_blocks, block_tokens and k_width must be "
        "nonzero");
  }
  if (v_widths_.empty()) {
    throw std::invalid_argument("BlockAllocator: v_widths must be non-empty");
  }
  const bool int8 = precision_ == KvPrecision::kInt8;
  for (const std::size_t vw : v_widths_) {
    if (vw == 0) {
      throw std::invalid_argument("BlockAllocator: zero v_width");
    }
    // kInt8: 1 byte per element plus the two per-row reconstruction
    // scales (K and V) the block metadata carries.
    row_bytes_ += int8 ? (k_width + vw) + 2 * sizeof(float)
                       : (k_width + vw) * sizeof(float);
  }
  const std::size_t rows = num_blocks * block_tokens;
  if (int8) {
    k8_planes_.reserve(v_widths_.size());
    v8_planes_.reserve(v_widths_.size());
    k_scales_.reserve(v_widths_.size());
    v_scales_.reserve(v_widths_.size());
    for (const std::size_t vw : v_widths_) {
      k8_planes_.emplace_back(rows, k_width);
      v8_planes_.emplace_back(rows, vw);
      k_scales_.emplace_back(rows, 1.0f);
      v_scales_.emplace_back(rows, 1.0f);
    }
  } else {
    k_planes_.reserve(v_widths_.size());
    v_planes_.reserve(v_widths_.size());
    for (const std::size_t vw : v_widths_) {
      k_planes_.emplace_back(rows, k_width);
      v_planes_.emplace_back(rows, vw);
    }
  }
  refs_.assign(num_blocks, 0);
  free_.reserve(num_blocks);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    // LIFO pop order hands out block 0 first — allocation order is part
    // of the deterministic transcript (which request OOMs first).
    free_.push_back(static_cast<BlockId>(num_blocks - 1 - b));
  }
}

std::optional<BlockId> BlockAllocator::allocate() {
  if (free_.empty()) return std::nullopt;
  const BlockId b = free_.back();
  free_.pop_back();
  assert(refs_[b] == 0);
  refs_[b] = 1;
  return b;
}

void BlockAllocator::add_ref(BlockId block) {
  if (refs_.at(block) == 0) {
    throw std::logic_error("BlockAllocator::add_ref: block " +
                           std::to_string(block) + " is free");
  }
  ++refs_[block];
}

bool BlockAllocator::release(BlockId block) {
  if (refs_.at(block) == 0) {
    throw std::logic_error("BlockAllocator::release: block " +
                           std::to_string(block) + " is already free");
  }
  if (--refs_[block] > 0) return false;
  free_.push_back(block);
  return true;
}

namespace {
[[noreturn]] void throw_raw_row_on_int8(const char* fn) {
  throw std::logic_error(std::string("BlockAllocator::") + fn +
                         ": raw FP32 rows do not exist on a kInt8 pool "
                         "(use store_/load_ row IO)");
}
}  // namespace

std::span<float> BlockAllocator::k_row(std::size_t layer, BlockId block,
                                       std::size_t offset) {
  assert(refs_.at(block) > 0 && offset < block_tokens_);
  if (precision_ == KvPrecision::kInt8) throw_raw_row_on_int8("k_row");
  tensor::MatrixF& plane = k_planes_.at(layer);
  return plane.row(block * block_tokens_ + offset);
}

std::span<const float> BlockAllocator::k_row(std::size_t layer, BlockId block,
                                             std::size_t offset) const {
  assert(refs_.at(block) > 0 && offset < block_tokens_);
  if (precision_ == KvPrecision::kInt8) throw_raw_row_on_int8("k_row");
  const tensor::MatrixF& plane = k_planes_.at(layer);
  return plane.row(block * block_tokens_ + offset);
}

std::span<float> BlockAllocator::v_row(std::size_t layer, BlockId block,
                                       std::size_t offset) {
  assert(refs_.at(block) > 0 && offset < block_tokens_);
  if (precision_ == KvPrecision::kInt8) throw_raw_row_on_int8("v_row");
  tensor::MatrixF& plane = v_planes_.at(layer);
  return plane.row(block * block_tokens_ + offset);
}

std::span<const float> BlockAllocator::v_row(std::size_t layer, BlockId block,
                                             std::size_t offset) const {
  assert(refs_.at(block) > 0 && offset < block_tokens_);
  if (precision_ == KvPrecision::kInt8) throw_raw_row_on_int8("v_row");
  const tensor::MatrixF& plane = v_planes_.at(layer);
  return plane.row(block * block_tokens_ + offset);
}

void BlockAllocator::store_k_row(std::size_t layer, BlockId block,
                                 std::size_t offset,
                                 std::span<const float> src) {
  assert(refs_.at(block) > 0 && offset < block_tokens_ &&
         src.size() == k_width_);
  const std::size_t r = block * block_tokens_ + offset;
  if (precision_ == KvPrecision::kInt8) {
    quantize_row(src, k8_planes_.at(layer).row(r).data(),
                 k_scales_[layer][r]);
  } else {
    std::memcpy(k_planes_.at(layer).row(r).data(), src.data(),
                src.size() * sizeof(float));
  }
}

void BlockAllocator::store_v_row(std::size_t layer, BlockId block,
                                 std::size_t offset,
                                 std::span<const float> src) {
  assert(refs_.at(block) > 0 && offset < block_tokens_ &&
         src.size() == v_widths_.at(layer));
  const std::size_t r = block * block_tokens_ + offset;
  if (precision_ == KvPrecision::kInt8) {
    quantize_row(src, v8_planes_.at(layer).row(r).data(),
                 v_scales_[layer][r]);
  } else {
    std::memcpy(v_planes_.at(layer).row(r).data(), src.data(),
                src.size() * sizeof(float));
  }
}

void BlockAllocator::load_k_row(std::size_t layer, BlockId block,
                                std::size_t offset,
                                std::span<float> dst) const {
  assert(refs_.at(block) > 0 && offset < block_tokens_ &&
         dst.size() == k_width_);
  const std::size_t r = block * block_tokens_ + offset;
  if (precision_ == KvPrecision::kInt8) {
    const auto q = k8_planes_.at(layer).row(r);
    const float scale = k_scales_[layer][r];
    for (std::size_t c = 0; c < dst.size(); ++c) {
      dst[c] = static_cast<float>(q[c]) * scale;
    }
  } else {
    const auto s = k_planes_.at(layer).row(r);
    std::memcpy(dst.data(), s.data(), dst.size() * sizeof(float));
  }
}

void BlockAllocator::load_v_row(std::size_t layer, BlockId block,
                                std::size_t offset,
                                std::span<float> dst) const {
  assert(refs_.at(block) > 0 && offset < block_tokens_ &&
         dst.size() == v_widths_.at(layer));
  const std::size_t r = block * block_tokens_ + offset;
  if (precision_ == KvPrecision::kInt8) {
    const auto q = v8_planes_.at(layer).row(r);
    const float scale = v_scales_[layer][r];
    for (std::size_t c = 0; c < dst.size(); ++c) {
      dst[c] = static_cast<float>(q[c]) * scale;
    }
  } else {
    const auto s = v_planes_.at(layer).row(r);
    std::memcpy(dst.data(), s.data(), dst.size() * sizeof(float));
  }
}

float BlockAllocator::k_row_scale(std::size_t layer, BlockId block,
                                  std::size_t offset) const {
  if (precision_ != KvPrecision::kInt8) return 1.0f;
  return k_scales_.at(layer).at(block * block_tokens_ + offset);
}

float BlockAllocator::v_row_scale(std::size_t layer, BlockId block,
                                  std::size_t offset) const {
  if (precision_ != KvPrecision::kInt8) return 1.0f;
  return v_scales_.at(layer).at(block * block_tokens_ + offset);
}

void BlockAllocator::copy_rows(BlockId from, BlockId to, std::size_t rows) {
  assert(rows <= block_tokens_);
  if (precision_ == KvPrecision::kInt8) {
    // Verbatim int8 + scale copy — re-quantizing a reconstruction would
    // compound error and break the CoW-is-invisible contract.
    for (std::size_t l = 0; l < num_layers(); ++l) {
      const std::size_t fb = from * block_tokens_;
      const std::size_t tb = to * block_tokens_;
      for (std::size_t r = 0; r < rows; ++r) {
        const auto ks = k8_planes_[l].row(fb + r);
        const auto vs = v8_planes_[l].row(fb + r);
        std::memcpy(k8_planes_[l].row(tb + r).data(), ks.data(), ks.size());
        std::memcpy(v8_planes_[l].row(tb + r).data(), vs.data(), vs.size());
        k_scales_[l][tb + r] = k_scales_[l][fb + r];
        v_scales_[l][tb + r] = v_scales_[l][fb + r];
      }
    }
    return;
  }
  for (std::size_t l = 0; l < num_layers(); ++l) {
    for (std::size_t r = 0; r < rows; ++r) {
      const auto ks = k_row(l, from, r);
      const auto vs = v_row(l, from, r);
      std::memcpy(k_row(l, to, r).data(), ks.data(),
                  ks.size() * sizeof(float));
      std::memcpy(v_row(l, to, r).data(), vs.data(),
                  vs.size() * sizeof(float));
    }
  }
}

// ---------------------------------------------------------------------------
// PagedKVCache — thin per-layer forwarding views.

std::size_t PagedKVCache::capacity() const noexcept {
  return slot_->pool_->max_context();
}
std::size_t PagedKVCache::used() const noexcept { return slot_->used_[layer_]; }
std::size_t PagedKVCache::k_width() const noexcept {
  return slot_->pool_->allocator().k_width();
}
std::size_t PagedKVCache::v_width() const noexcept {
  return slot_->pool_->allocator().v_width(layer_);
}
KvPrecision PagedKVCache::precision() const noexcept {
  return slot_->pool_->allocator().precision();
}
void PagedKVCache::append(std::span<const float> k_row,
                          std::span<const float> v_row) {
  slot_->append(layer_, k_row, v_row);
}
tensor::MatrixF PagedKVCache::k_prefix() const {
  return slot_->k_prefix(layer_);
}
tensor::MatrixF PagedKVCache::v_prefix() const {
  return slot_->v_prefix(layer_);
}
void PagedKVCache::truncate(std::size_t n) noexcept {
  slot_->truncate(layer_, n);
}

// ---------------------------------------------------------------------------
// PagedKVSlot

bool PagedKVSlot::cow_block(std::size_t bi, std::size_t rows) {
  BlockAllocator& alloc = pool_->alloc_;
  const auto nb = alloc.allocate();
  if (!nb) return false;
  alloc.copy_rows(table_[bi], *nb, rows);
  pool_->release_block(table_[bi]);  // ref > 1 here, never frees
  table_[bi] = *nb;
  ++pool_->stats_.cow_splits;
  return true;
}

bool PagedKVSlot::prepare_append() {
  const std::size_t pos = tokens();
  if (pos >= pool_->max_context_) return true;  // caller's capacity stop
  if (pos < shared_rows_) return true;  // row resident in a shared block
  const std::size_t bt = pool_->alloc_.block_tokens();
  const std::size_t bi = pos / bt;
  const std::size_t off = pos % bt;
  if (bi == table_.size()) {
    const auto b = pool_->alloc_.allocate();
    if (!b) return false;
    table_.push_back(*b);
  } else if (pool_->alloc_.ref_count(table_[bi]) > 1) {
    // Another table aliases this block (a shared prefix about to
    // diverge, or a later arrival that seeded off our prompt): never
    // write a block with refcount > 1 — split it, preserving the rows
    // already decoded into it.
    if (!cow_block(bi, off)) return false;
  }
  // About to overwrite row `off`: any trie advertisement claiming more
  // rows of this block no longer describes its contents. Done here, in
  // the serial phase, so the parallel appends' own invalidate calls find
  // nothing to erase (read-only scans).
  pool_->trie_.invalidate(table_[bi], off);
  return true;
}

void PagedKVSlot::append(std::size_t layer, std::span<const float> k_row,
                         std::span<const float> v_row) {
  BlockAllocator& alloc = pool_->alloc_;
  const std::size_t kw = alloc.k_width();
  const std::size_t vw = alloc.v_width(layer);
  const std::size_t pos = used_.at(layer);
  // Checks precede any write or cursor move — same strong guarantee as
  // KVCache::append.
  if (pos >= pool_->max_context_) {
    throw std::length_error("PagedKVCache::append: cache is full (" +
                            std::to_string(pool_->max_context_) + " rows)");
  }
  if (k_row.size() != kw || v_row.size() != vw) {
    throw std::invalid_argument(
        "PagedKVCache::append: row width mismatch (k " +
        std::to_string(k_row.size()) + ", v " + std::to_string(v_row.size()) +
        ", cache k " + std::to_string(kw) + ", cache v " + std::to_string(vw) +
        ")");
  }
  if (pos < shared_rows_) {
    // The row is already resident in a seeded shared block, bit-identical
    // by the prefix_group contract — advance past it without writing
    // (the block may be aliased by other tables). The decode tick still
    // computed this position's math, so transcripts, launches and device
    // time are identical with sharing on or off; only memory changes.
    ++used_[layer];
    if (layer + 1 == alloc.num_layers()) register_completed_prefix(pos + 1);
    return;
  }
  const std::size_t bt = alloc.block_tokens();
  const std::size_t bi = pos / bt;
  const std::size_t off = pos % bt;
  if (bi == table_.size()) {
    // Serial fallback for direct users — the scheduler's prepare_append
    // pre-allocates, so the batched parallel section never takes this
    // branch (allocator mutation would race across slot chunks).
    const auto b = pool_->alloc_.allocate();
    if (!b) {
      throw std::length_error(
          "PagedKVCache::append: block pool exhausted (kv_cache_full)");
    }
    table_.push_back(*b);
  } else if (alloc.ref_count(table_[bi]) > 1) {
    if (!cow_block(bi, off)) {
      throw std::length_error(
          "PagedKVCache::append: block pool exhausted (kv_cache_full)");
    }
  }
  pool_->trie_.invalidate(table_[bi], off);  // no-op after prepare_append
  const BlockId b = table_[bi];
  // Precision-aware row write: a plain copy on fp32 pools, a
  // deterministic per-row quantization (scale recorded in the block
  // metadata) on int8 ones. Still a pure row write — safe from the
  // parallel decode section.
  alloc.store_k_row(layer, b, off, k_row);
  alloc.store_v_row(layer, b, off, v_row);
  ++used_[layer];
  if (layer + 1 == alloc.num_layers()) register_completed_prefix(pos + 1);
}

void PagedKVSlot::register_completed_prefix(std::size_t rows_done) {
  if (group_ == kNoPrefixGroup || !pool_->sharing_) return;
  const std::size_t n = prompt_.size();
  if (rows_done == 0 || rows_done > n) return;
  const std::size_t bt = pool_->alloc_.block_tokens();
  if (rows_done == n || rows_done % bt == 0) {
    // The block holding row rows_done-1 now carries its full share of
    // the prompt. Advertising is deferred to the serial flush — this
    // runs inside the parallel decode section.
    pending_.emplace_back(rows_done, table_[(rows_done - 1) / bt]);
  }
}

tensor::MatrixF PagedKVSlot::k_prefix(std::size_t layer) const {
  const BlockAllocator& alloc = pool_->alloc_;
  const std::size_t bt = alloc.block_tokens();
  const std::size_t used = used_.at(layer);
  tensor::MatrixF out(used, alloc.k_width());
  for (std::size_t r = 0; r < used; ++r) {
    alloc.load_k_row(layer, table_[r / bt], r % bt, out.row(r));
  }
  return out;
}

tensor::MatrixF PagedKVSlot::v_prefix(std::size_t layer) const {
  const BlockAllocator& alloc = pool_->alloc_;
  const std::size_t bt = alloc.block_tokens();
  const std::size_t used = used_.at(layer);
  tensor::MatrixF out(used, alloc.v_width(layer));
  for (std::size_t r = 0; r < used; ++r) {
    alloc.load_v_row(layer, table_[r / bt], r % bt, out.row(r));
  }
  return out;
}

void PagedKVSlot::truncate(std::size_t layer, std::size_t n) noexcept {
  if (n < used_[layer]) used_[layer] = n;
}

void PagedKVSlot::rollback(std::size_t n) {
  for (std::size_t l = 0; l < used_.size(); ++l) truncate(l, n);
  const std::size_t bt = pool_->alloc_.block_tokens();
  // ceil(n / bt) blocks hold rows [0, n): a rollback landing exactly ON
  // a block boundary keeps no part of the boundary block, so it frees —
  // keeping `n / bt + 1` here is the partial-block leak the regression
  // suite pins. Seeded shared blocks are floored in: their rows stay
  // resident (appends below shared_rows_ skip the write and rely on
  // them).
  const std::size_t keep = std::max(seeded_blocks_, (n + bt - 1) / bt);
  while (table_.size() > keep) {
    pool_->release_block(table_.back());
    table_.pop_back();
  }
  std::erase_if(pending_, [n](const auto& p) { return p.first > n; });
}

// ---------------------------------------------------------------------------
// PagedKVPool

namespace {
std::size_t resolve_block_tokens(std::size_t max_context,
                                 const PagedKVOptions& opts) {
  return opts.block_tokens == 0 ? max_context : opts.block_tokens;
}
std::size_t resolve_num_blocks(std::size_t num_slots, std::size_t max_context,
                               std::size_t block_tokens,
                               const PagedKVOptions& opts) {
  if (opts.num_blocks != 0) return opts.num_blocks;
  if (block_tokens == 0) return 0;  // BlockAllocator throws the real error
  return num_slots * ((max_context + block_tokens - 1) / block_tokens);
}
}  // namespace

PagedKVPool::PagedKVPool(std::size_t num_slots, std::size_t max_context,
                         std::size_t k_width,
                         const std::vector<std::size_t>& v_widths,
                         PagedKVOptions opts)
    : alloc_(resolve_num_blocks(num_slots, max_context,
                                resolve_block_tokens(max_context, opts), opts),
             resolve_block_tokens(max_context, opts), k_width, v_widths,
             opts.precision),
      trie_(alloc_.block_tokens()),
      max_context_(max_context),
      // Whole-context blocks (the contiguous reference layout) cannot
      // share a proper prefix without copying everything, so sharing is
      // meaningful only when a block is smaller than the context.
      sharing_(opts.enable_prefix_sharing &&
               alloc_.block_tokens() < max_context) {
  if (num_slots == 0) {
    throw std::invalid_argument("PagedKVPool: num_slots must be nonzero");
  }
  slots_.resize(num_slots);
  free_slots_.reserve(num_slots);
  for (std::size_t s = 0; s < num_slots; ++s) {
    PagedKVSlot& sl = slots_[s];
    sl.pool_ = this;
    sl.used_.assign(v_widths.size(), 0);
    sl.views_.reserve(v_widths.size());
    for (std::size_t l = 0; l < v_widths.size(); ++l) {
      sl.views_.push_back(PagedKVCache(&sl, l));
    }
    free_slots_.push_back(num_slots - 1 - s);  // pop order: slot 0 first
  }
}

std::size_t PagedKVPool::acquire() {
  if (free_slots_.empty()) {
    throw std::runtime_error("PagedKVPool::acquire: no free slot");
  }
  const std::size_t s = free_slots_.back();
  free_slots_.pop_back();
  PagedKVSlot& sl = slots_[s];
  assert(sl.table_.empty() && sl.pending_.empty());
  for (auto& u : sl.used_) u = 0;
  sl.shared_rows_ = 0;
  sl.seeded_blocks_ = 0;
  sl.group_ = kNoPrefixGroup;
  sl.prompt_.clear();
  sl.in_use_ = true;
  return s;
}

std::size_t PagedKVPool::acquire(std::uint64_t group,
                                 std::span<const std::int32_t> prompt) {
  const std::size_t s = acquire();
  if (!sharing_ || group == kNoPrefixGroup || prompt.empty()) return s;
  PagedKVSlot& sl = slots_[s];
  sl.group_ = group;
  sl.prompt_.assign(prompt.begin(), prompt.end());
  if (prompt.size() < 2) return s;  // nothing shareable below the cap
  // Cap at prompt.size()-1: the last prompt position always decodes
  // locally — its hidden state feeds the first select() — which also
  // guarantees a shared-everything request still makes its first append
  // inside (or right after) the aliased region, CoW-splitting naturally.
  const PrefixTrie::Match m = trie_.lookup(group, prompt, prompt.size() - 1);
  if (m.tokens == 0) return s;
  for (const BlockId b : m.blocks) {
    alloc_.add_ref(b);
    sl.table_.push_back(b);
  }
  // Cursors stay at ZERO: the decode tick recomputes every shared
  // position's math (identical launches and device time with sharing on
  // or off — the sharing-differential's bit-identical-metrics contract);
  // appends below shared_rows_ just skip the write. Sharing buys memory,
  // not ticks.
  sl.shared_rows_ = m.tokens;
  sl.seeded_blocks_ = sl.table_.size();
  ++stats_.prefix_hits;
  stats_.prefix_shared_tokens += m.tokens;
  return s;
}

void PagedKVPool::release(std::size_t slot) {
  if (slot >= slots_.size() || !slots_[slot].in_use_) {
    throw std::invalid_argument("PagedKVPool::release: slot " +
                                std::to_string(slot) +
                                " is not an acquired slot");
  }
  PagedKVSlot& sl = slots_[slot];
  // Preemption, retry-recompute, cancel and normal retirement all end
  // here: REFCOUNT DECREMENT per table entry, not slot truncation. A
  // block a later request still aliases survives; the rest free (and
  // drop out of the trie), so a drained pool is back to zero used bytes.
  for (const BlockId b : sl.table_) release_block(b);
  sl.table_.clear();
  sl.pending_.clear();
  sl.prompt_.clear();
  sl.group_ = kNoPrefixGroup;
  sl.shared_rows_ = 0;
  sl.seeded_blocks_ = 0;
  for (auto& u : sl.used_) u = 0;
  sl.in_use_ = false;
  free_slots_.push_back(slot);
}

void PagedKVPool::release_block(BlockId b) {
  if (alloc_.release(b)) trie_.erase_block(b);
}

void PagedKVPool::flush_registrations() {
  if (!sharing_) return;
  for (PagedKVSlot& sl : slots_) {  // slot order: deterministic
    if (!sl.in_use_) continue;
    for (const auto& [prefix_len, block] : sl.pending_) {
      trie_.insert(sl.group_,
                   std::span<const std::int32_t>(sl.prompt_.data(), prefix_len),
                   block);
    }
    sl.pending_.clear();
  }
}

}  // namespace et::core
