// Deterministic thread pool for kernel math and parallel serving ticks.
//
// The pool's one loop primitive partitions an index range [0, n) into
// fixed chunks of `grain` iterations. The partition depends only on
// (n, grain) — NEVER on the thread count — and every chunk runs exactly
// once, so any per-chunk reduction merged in chunk order is bit-identical
// at 1, 2 or 64 threads. Which thread executes a chunk is the only
// scheduling freedom, which is why callers must keep chunks independent
// (each output element written by exactly one iteration). This is the
// work-partitioning half of FlashAttention-2's lesson applied to the
// simulated stack; core::ExecContext layers the device-side determinism
// (launch-log order, fault indices) on top. See docs/threading.md.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace et::core {

class ThreadPool {
 public:
  /// `threads` counts the calling thread too: ThreadPool(1) spawns no
  /// workers and runs every chunk inline; ThreadPool(8) spawns 7.
  explicit ThreadPool(std::size_t threads = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

  /// fn(chunk_index, begin, end) over the fixed partition of [0, n).
  using ChunkFn =
      std::function<void(std::size_t chunk, std::size_t begin,
                         std::size_t end)>;

  struct ChunkError {
    std::size_t chunk = 0;
    std::exception_ptr error;
  };

  /// Run every chunk (all chunks execute even if some throw — execution
  /// is thread-count-independent, so a deterministic body that throws in
  /// chunk c throws in chunk c at every thread count). Returns the
  /// captured exceptions sorted by chunk index; empty means success.
  /// Nested calls from inside a chunk body run serially inline.
  [[nodiscard]] std::vector<ChunkError> run_chunked(std::size_t n,
                                                    std::size_t grain,
                                                    const ChunkFn& fn);

  /// run_chunked, rethrowing the lowest-chunk-index exception (the one a
  /// serial loop would have hit first).
  void for_chunks(std::size_t n, std::size_t grain, const ChunkFn& fn);

  /// Per-index loop over [0, n). grain = 0 picks grain_for(n): a fixed
  /// partition of at most kMaxAutoChunks chunks that depends only on n.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn, std::size_t grain = 0) {
    if (n == 0) return;
    const std::size_t g = grain != 0 ? grain : grain_for(n);
    for_chunks(n, g,
               [&fn](std::size_t, std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) fn(i);
               });
  }

  /// True while the calling thread is executing a chunk body (on a worker
  /// OR on the submitting thread, which participates). Nested parallelism
  /// is guarded with this: a parallel_for issued from inside a chunk runs
  /// serially inline instead of deadlocking on the single in-flight job.
  [[nodiscard]] static bool in_parallel_region() noexcept;

  /// Auto-grain bound: at most this many chunks, so per-chunk dispatch
  /// overhead stays negligible next to the chunk bodies.
  static constexpr std::size_t kMaxAutoChunks = 64;

  [[nodiscard]] static std::size_t chunk_count(std::size_t n,
                                               std::size_t grain) noexcept {
    return grain == 0 ? 0 : (n + grain - 1) / grain;
  }

  /// Fixed grain for an n-iteration loop: ceil(n / kMaxAutoChunks).
  /// Depends only on n — a thread-count-independent partition.
  [[nodiscard]] static std::size_t grain_for(std::size_t n) noexcept {
    return (n + kMaxAutoChunks - 1) / kMaxAutoChunks;
  }

  /// What the host offers (>= 1); convenience for CLI --threads defaults.
  [[nodiscard]] static std::size_t hardware_threads() noexcept;

 private:
  struct Job {
    const ChunkFn* fn = nullptr;
    std::size_t n = 0;
    std::size_t grain = 0;
    std::size_t chunks = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex err_mutex;
    std::vector<ChunkError> errors;
  };

  void worker_loop();
  static void work_on(Job& job);

  std::size_t threads_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_cv_;  // workers wait for a job / stop
  std::condition_variable done_cv_;  // submitter waits for completion
  Job* job_ = nullptr;               // guarded by mutex_
  std::uint64_t epoch_ = 0;          // bumped per job so workers join once
  std::size_t busy_workers_ = 0;     // workers inside work_on
  bool stop_ = false;
};

}  // namespace et::core
