// Paged KV storage (docs/serving.md "Paged KV and prefix sharing"): the
// vLLM PagedAttention memory model (Kwon et al., PAPERS.md) applied to
// this repo's per-layer KV planes. Instead of one contiguous
// max_context-row cache per slot per layer, KV rows live in fixed-size
// BLOCKS of `block_tokens` rows; each serving slot holds a block TABLE
// mapping logical token index -> (block, offset), and blocks are
// refcounted so requests with a common prompt prefix can alias the same
// physical rows (copy-on-write split on the first divergent append).
//
// Layer geometry: one block id spans EVERY layer — block b owns row band
// [b*block_tokens, (b+1)*block_tokens) of each layer's K plane (k_width
// wide) and V plane (that layer's v_width: d_model dense, Σkept
// condensed, H·kept folded — the PR-5 widths, preserved inside the block
// geometry). One table per slot therefore serves all layers, which is
// what lets the scheduler allocate/CoW once per position, not per layer.
//
// Determinism: allocation order is part of the observable transcript
// (which request OOMs first), so all allocation and CoW happens in the
// scheduler's SERIAL prepare phase (PagedKVSlot::prepare_append, called
// slot-by-slot before the parallel decode section) and the free list is
// LIFO — the same script yields the same block ids at any thread count.
// The parallel per-slot appends are then pure row writes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "core/prefix_trie.hpp"
#include "tensor/matrix.hpp"

namespace et::core {

/// Storage precision of the pooled KV planes. kFp32 is the lossless
/// reference layout; kInt8 stores every K/V row as symmetric int8 with
/// one FP32 reconstruction scale per row per plane, held in the block
/// metadata (scale = amax/127 over that row alone, so quantization is a
/// pure function of the appended row — deterministic at any thread count
/// and identical whether the row is written by its first author or
/// skipped under prefix sharing). Gathers reconstruct FP32, so decode
/// math is unchanged in shape and bounded-error in value
/// (docs/quantization.md).
enum class KvPrecision : std::uint8_t { kFp32, kInt8 };

[[nodiscard]] constexpr std::string_view to_string(KvPrecision p) noexcept {
  switch (p) {
    case KvPrecision::kFp32: return "fp32";
    case KvPrecision::kInt8: return "int8";
  }
  return "?";
}

/// Round-trip inverse of to_string (the PR-8 parsing convention): parse a
/// CLI token or config value; nullopt on junk. Named for its enum because
/// C++ cannot overload core::from_string on return type alone.
[[nodiscard]] constexpr std::optional<KvPrecision> kv_precision_from_string(
    std::string_view name) noexcept {
  constexpr KvPrecision kAll[] = {KvPrecision::kFp32, KvPrecision::kInt8};
  for (KvPrecision p : kAll) {
    if (to_string(p) == name) return p;
  }
  return std::nullopt;
}

/// Default KV block granularity (tokens per block). Under the
/// ET_CONTIGUOUS_KV build flag the default degenerates to "one block =
/// the whole context" — the pre-paged contiguous reference layout, kept
/// behind a flag for one PR so the differential suite can pin the paged
/// path against it (tests also select it per-pool at runtime via
/// PagedKVOptions::block_tokens = 0).
#ifdef ET_CONTIGUOUS_KV
inline constexpr std::size_t kDefaultKvBlockTokens = 0;
#else
inline constexpr std::size_t kDefaultKvBlockTokens = 16;
#endif

/// Paged-pool shape knobs, carried alongside the model geometry.
struct PagedKVOptions {
  /// Rows per block; 0 = one block spans max_context (the contiguous
  /// reference layout, which also disables prefix sharing — whole-context
  /// blocks can never share a proper prefix without copying everything).
  std::size_t block_tokens = kDefaultKvBlockTokens;
  /// Physical blocks in the pool; 0 = num_slots * ceil(max_context /
  /// block_tokens), the capacity at which no workload can OOM that the
  /// contiguous pool could serve (per-slot demand never exceeds
  /// ceil(max_context/block_tokens) blocks). Smaller values make block
  /// exhaustion a reachable, typed kv_cache_full stop.
  std::size_t num_blocks = 0;
  /// Admission-time prompt-prefix sharing (the trie + CoW machinery).
  /// Off: every request fills private blocks; transcripts and device
  /// traffic are identical either way — sharing changes memory only.
  bool enable_prefix_sharing = true;
  /// Plane storage precision. kInt8 shrinks every KV element from 4
  /// bytes to 1 (+ one FP32 scale per row per plane in block metadata),
  /// so kv_bytes / kv_bytes_used drop to roughly a quarter of the fp32
  /// layout and the same pool holds ~2× the resident batch of a
  /// half-precision one (bench/ablation_serving's capacity row).
  KvPrecision precision = KvPrecision::kFp32;
};

/// Pool-lifetime sharing statistics (monotonic; serving gauges).
struct PagedKVStats {
  std::uint64_t prefix_hits = 0;  ///< admissions that aliased >= 1 block
  std::uint64_t prefix_shared_tokens = 0;  ///< KV rows seeded from the trie
  std::uint64_t cow_splits = 0;  ///< blocks copied on a divergent append
};

/// Refcounted fixed-size KV block storage for every layer. Rows are
/// addressed as (layer, block, offset); `allocate` hands out blocks at
/// refcount 1 from a LIFO free list, `add_ref`/`release` track table
/// aliases, and `copy_rows` is the CoW primitive. The allocator knows
/// nothing about slots, prompts or the trie — that is PagedKVPool's job.
class BlockAllocator {
 public:
  /// Throws std::invalid_argument on zero blocks/block_tokens/k_width,
  /// empty v_widths, or a zero v_width entry.
  BlockAllocator(std::size_t num_blocks, std::size_t block_tokens,
                 std::size_t k_width, const std::vector<std::size_t>& v_widths,
                 KvPrecision precision = KvPrecision::kFp32);

  [[nodiscard]] KvPrecision precision() const noexcept { return precision_; }

  [[nodiscard]] std::size_t num_blocks() const noexcept { return refs_.size(); }
  [[nodiscard]] std::size_t block_tokens() const noexcept {
    return block_tokens_;
  }
  [[nodiscard]] std::size_t num_layers() const noexcept {
    return v_widths_.size();
  }
  [[nodiscard]] std::size_t k_width() const noexcept { return k_width_; }
  [[nodiscard]] std::size_t v_width(std::size_t layer) const {
    return v_widths_.at(layer);
  }

  [[nodiscard]] std::size_t free_blocks() const noexcept {
    return free_.size();
  }
  [[nodiscard]] std::size_t resident_blocks() const noexcept {
    return num_blocks() - free_blocks();
  }

  /// Bytes one block holds across every layer's K and V planes — the
  /// unit of the kv_bytes accounting formula (docs/serving.md):
  ///   kv_bytes_used = resident_blocks * block_tokens * Σ_l (k_width +
  ///   v_width_l) * elem_bytes   (+ 2 scale floats per row per layer
  /// under kInt8, where elem_bytes is 1 instead of sizeof(float)).
  [[nodiscard]] std::size_t bytes_per_block() const noexcept {
    return block_tokens_ * row_bytes_;
  }
  /// Full pool capacity in bytes (the kv_bytes gauge).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return num_blocks() * bytes_per_block();
  }
  /// Bytes of blocks currently held by at least one reference (the
  /// kv_bytes_used gauge — Σ resident blocks, the paged replacement for
  /// the contiguous pool's per-row accounting).
  [[nodiscard]] std::size_t resident_bytes() const noexcept {
    return resident_blocks() * bytes_per_block();
  }

  /// Claim a free block at refcount 1; nullopt when the pool is
  /// exhausted (the caller's typed kv_cache_full condition). LIFO.
  [[nodiscard]] std::optional<BlockId> allocate();

  /// One more table references `block`. Throws std::logic_error on a
  /// free block.
  void add_ref(BlockId block);

  /// Drop one reference; returns true when the block became free (the
  /// caller must then un-advertise it, e.g. PrefixTrie::erase_block).
  /// Throws std::logic_error on a block that is already free.
  bool release(BlockId block);

  [[nodiscard]] std::size_t ref_count(BlockId block) const {
    return refs_.at(block);
  }

  /// Raw FP32 row accessors: row `offset` (< block_tokens) of `block` in
  /// `layer`. Only meaningful on kFp32 pools (throws std::logic_error on
  /// kInt8 ones — int8 rows are reached through store_/load_ below, which
  /// own the scale bookkeeping).
  [[nodiscard]] std::span<float> k_row(std::size_t layer, BlockId block,
                                       std::size_t offset);
  [[nodiscard]] std::span<const float> k_row(std::size_t layer, BlockId block,
                                             std::size_t offset) const;
  [[nodiscard]] std::span<float> v_row(std::size_t layer, BlockId block,
                                       std::size_t offset);
  [[nodiscard]] std::span<const float> v_row(std::size_t layer, BlockId block,
                                             std::size_t offset) const;

  /// Precision-aware row IO. store_* writes `src` in the pool's storage
  /// precision — a plain copy under kFp32; under kInt8 a symmetric
  /// round-to-nearest quantization against the row's own amax with the
  /// reconstruction scale recorded in the block metadata. load_* fills
  /// `dst` with the FP32 reconstruction (exact under kFp32, q·scale
  /// under kInt8). Spans must match the plane width.
  void store_k_row(std::size_t layer, BlockId block, std::size_t offset,
                   std::span<const float> src);
  void store_v_row(std::size_t layer, BlockId block, std::size_t offset,
                   std::span<const float> src);
  void load_k_row(std::size_t layer, BlockId block, std::size_t offset,
                  std::span<float> dst) const;
  void load_v_row(std::size_t layer, BlockId block, std::size_t offset,
                  std::span<float> dst) const;

  /// Reconstruction scale stored for a row (1.0 on kFp32 pools) — the
  /// per-block metadata the quant property suite reconstructs against.
  [[nodiscard]] float k_row_scale(std::size_t layer, BlockId block,
                                  std::size_t offset) const;
  [[nodiscard]] float v_row_scale(std::size_t layer, BlockId block,
                                  std::size_t offset) const;

  /// CoW split: copy the first `rows` rows of every layer's planes from
  /// `from` into `to` (including the per-row scales on kInt8 pools — a
  /// split must never re-quantize). The destination must already be
  /// allocated.
  void copy_rows(BlockId from, BlockId to, std::size_t rows);

  /// Free-list snapshot (LIFO order), for the invariant/fuzz suite:
  /// free ∩ live must be empty and free + resident must partition the
  /// pool.
  [[nodiscard]] const std::vector<BlockId>& free_list() const noexcept {
    return free_;
  }

 private:
  std::size_t block_tokens_;
  std::size_t k_width_;
  std::size_t row_bytes_ = 0;  // Σ_l (k_width + v_width_l) * elem + scales
  KvPrecision precision_ = KvPrecision::kFp32;
  std::vector<std::size_t> v_widths_;
  // Exactly one plane family is populated, per precision_.
  std::vector<tensor::MatrixF> k_planes_;  // per layer: num_blocks*bt rows
  std::vector<tensor::MatrixF> v_planes_;
  std::vector<tensor::Matrix<std::int8_t>> k8_planes_;
  std::vector<tensor::Matrix<std::int8_t>> v8_planes_;
  // kInt8 block metadata: one reconstruction scale per row per plane,
  // indexed [layer][block * block_tokens + offset].
  std::vector<std::vector<float>> k_scales_;
  std::vector<std::vector<float>> v_scales_;
  std::vector<std::uint32_t> refs_;  // per block; 0 == free
  std::vector<BlockId> free_;        // LIFO
};

class PagedKVPool;
class PagedKVSlot;

/// Per-layer view of one slot's paged KV, presenting the same surface as
/// the contiguous core::KVCache (append / used / k_prefix / v_prefix /
/// truncate / capacity) so the fused decode tick and the incremental
/// attention gather read through the block table with unchanged code
/// shape. All state lives in the owning PagedKVSlot; the view is two
/// pointers.
class PagedKVCache {
 public:
  PagedKVCache() = default;

  [[nodiscard]] std::size_t capacity() const noexcept;
  [[nodiscard]] std::size_t used() const noexcept;
  [[nodiscard]] bool full() const noexcept { return used() == capacity(); }
  [[nodiscard]] std::size_t k_width() const noexcept;
  [[nodiscard]] std::size_t v_width() const noexcept;
  /// Storage precision of the backing pool — the decode tick reads this
  /// to account 1-byte K/V traffic (plus scale loads) on int8 pools.
  [[nodiscard]] KvPrecision precision() const noexcept;

  /// Same contract as KVCache::append — std::length_error when the
  /// logical capacity OR the block pool is exhausted (both are the typed
  /// kv_cache_full stop), std::invalid_argument on a width mismatch,
  /// checks before writes. Rows inside the slot's shared prefix advance
  /// the cursor without writing (the resident shared block already holds
  /// bit-identical content, and may be aliased by other tables).
  void append(std::span<const float> k_row, std::span<const float> v_row);

  /// Contiguous copies of the filled prefix, gathered through the block
  /// table — bit-identical to the contiguous cache's planes (the oracle
  /// property tests/test_paged_kv.cpp pins across block sizes).
  [[nodiscard]] tensor::MatrixF k_prefix() const;
  [[nodiscard]] tensor::MatrixF v_prefix() const;

  /// Cursor-only rollback (no block is freed): safe from the parallel
  /// per-slot decode section, where freeing would race the allocator.
  /// Block reclamation happens at slot release or an explicit
  /// PagedKVSlot::rollback from serial code.
  void truncate(std::size_t n) noexcept;

 private:
  friend class PagedKVSlot;
  friend class PagedKVPool;
  PagedKVCache(PagedKVSlot* slot, std::size_t layer)
      : slot_(slot), layer_(layer) {}
  PagedKVSlot* slot_ = nullptr;
  std::size_t layer_ = 0;
};

/// One serving slot's paged KV state: the block table shared by every
/// layer, per-layer fill cursors, the shared-prefix bookkeeping, and the
/// per-layer PagedKVCache views handed to the decode tick.
class PagedKVSlot {
 public:
  [[nodiscard]] std::vector<PagedKVCache>& caches() noexcept { return views_; }
  [[nodiscard]] const std::vector<PagedKVCache>& caches() const noexcept {
    return views_;
  }

  [[nodiscard]] std::size_t used(std::size_t layer) const {
    return used_.at(layer);
  }
  /// Logical context length (layer cursors agree between ticks).
  [[nodiscard]] std::size_t tokens() const noexcept {
    return used_.empty() ? 0 : used_[0];
  }
  [[nodiscard]] const std::vector<BlockId>& table() const noexcept {
    return table_;
  }
  /// KV rows seeded from another request's blocks at acquire time.
  [[nodiscard]] std::size_t shared_rows() const noexcept {
    return shared_rows_;
  }
  [[nodiscard]] bool in_use() const noexcept { return in_use_; }

  /// Serial pre-decode phase: make the row at the current cursor
  /// writable — allocate the block the next append lands in, CoW-split
  /// it first if other tables alias it. Returns false on block
  /// exhaustion (the caller retires the request kv_cache_full BEFORE the
  /// tick, deterministically). Never called concurrently; the parallel
  /// appends that follow are pure row writes.
  [[nodiscard]] bool prepare_append();

  /// Per-layer append — PagedKVCache::append's implementation.
  void append(std::size_t layer, std::span<const float> k_row,
              std::span<const float> v_row);

  [[nodiscard]] tensor::MatrixF k_prefix(std::size_t layer) const;
  [[nodiscard]] tensor::MatrixF v_prefix(std::size_t layer) const;

  void truncate(std::size_t layer, std::size_t n) noexcept;

  /// Serial rollback: truncate every layer to `n` rows AND return the
  /// blocks past the new frontier to the allocator — the paged analogue
  /// of the fault-atomic KVCache::truncate, now with storage to give
  /// back. Keeps ceil(n / block_tokens) blocks (never trimming below the
  /// seeded shared prefix), so a rollback landing exactly ON a block
  /// boundary frees the boundary block — the partial-block release case
  /// tests/test_paged_kv.cpp pins.
  void rollback(std::size_t n);

 private:
  friend class PagedKVPool;
  friend class PagedKVCache;

  /// CoW-split table_[bi], preserving its first `rows` rows. False on
  /// block exhaustion.
  [[nodiscard]] bool cow_block(std::size_t bi, std::size_t rows);
  void register_completed_prefix(std::size_t rows_done);

  PagedKVPool* pool_ = nullptr;
  std::vector<PagedKVCache> views_;
  std::vector<BlockId> table_;
  std::vector<std::size_t> used_;  // per-layer cursor
  std::size_t shared_rows_ = 0;
  std::size_t seeded_blocks_ = 0;  // rollback floor: shared blocks stay
  std::uint64_t group_ = kNoPrefixGroup;
  std::vector<std::int32_t> prompt_;  // retained for trie registration
  // Prompt blocks completed this tick, to advertise in the trie. Trie
  // writes are deferred to the serial flush (pool.flush_registrations)
  // because appends run in parallel chunks.
  std::vector<std::pair<std::size_t, BlockId>> pending_;  // (prefix_len, blk)
  bool in_use_ = false;
};

/// The paged replacement for core::KVCachePool: same acquire/release/
/// caches/memory_bytes/used_bytes surface (so the scheduler and the
/// serving gauges port over), plus prompt-aware acquisition that seeds a
/// slot's table from the prefix trie and the serial registration flush.
class PagedKVPool {
 public:
  /// Geometry mirrors KVCachePool's layout-aware constructor; `opts`
  /// adds the paged shape. Throws std::invalid_argument on zero slots /
  /// max_context or anything BlockAllocator rejects.
  PagedKVPool(std::size_t num_slots, std::size_t max_context,
              std::size_t k_width, const std::vector<std::size_t>& v_widths,
              PagedKVOptions opts = {});

  // Slots and their per-layer views hold pointers back into this pool;
  // relocating it would dangle them.
  PagedKVPool(const PagedKVPool&) = delete;
  PagedKVPool& operator=(const PagedKVPool&) = delete;
  PagedKVPool(PagedKVPool&&) = delete;
  PagedKVPool& operator=(PagedKVPool&&) = delete;

  [[nodiscard]] std::size_t num_slots() const noexcept {
    return slots_.size();
  }
  [[nodiscard]] std::size_t free_slots() const noexcept {
    return free_slots_.size();
  }
  [[nodiscard]] bool has_free() const noexcept { return !free_slots_.empty(); }
  [[nodiscard]] std::size_t max_context() const noexcept {
    return max_context_;
  }
  [[nodiscard]] std::size_t block_tokens() const noexcept {
    return alloc_.block_tokens();
  }
  [[nodiscard]] bool sharing_enabled() const noexcept { return sharing_; }
  [[nodiscard]] KvPrecision precision() const noexcept {
    return alloc_.precision();
  }

  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return alloc_.memory_bytes();
  }
  /// Σ resident blocks × bytes_per_block — block-granular, so aliased
  /// prefixes count ONCE (the whole point). Zero at drain: the trie is
  /// non-owning, releasing every slot frees every block.
  [[nodiscard]] std::size_t used_bytes() const noexcept {
    return alloc_.resident_bytes();
  }

  /// Claim a slot with no sharing (kNoPrefixGroup path).
  [[nodiscard]] std::size_t acquire();

  /// Claim a slot for a request in `group` with `prompt`: the trie's
  /// longest registered prefix (capped at prompt.size() - 1 — the last
  /// prompt position always decodes locally, its hidden state feeds
  /// select()) is aliased into the slot's table with refcounts bumped,
  /// and those rows' later appends advance past resident content instead
  /// of rewriting it. The prompt is retained so the slot can advertise
  /// its own completed blocks.
  [[nodiscard]] std::size_t acquire(std::uint64_t group,
                                    std::span<const std::int32_t> prompt);

  /// Release a slot: every table reference dropped (blocks free when
  /// theirs was the last — the preemption/retry/cancel path routes
  /// through HERE, refcount decrement, not slot truncation), trie
  /// advertisements of freed blocks erased, pending registrations
  /// dropped. Throws std::invalid_argument on out-of-range/double
  /// release.
  void release(std::size_t slot);

  [[nodiscard]] PagedKVSlot& slot(std::size_t i) { return slots_.at(i); }
  [[nodiscard]] const PagedKVSlot& slot(std::size_t i) const {
    return slots_.at(i);
  }
  [[nodiscard]] std::vector<PagedKVCache>& caches(std::size_t i) {
    return slots_.at(i).caches();
  }
  [[nodiscard]] const std::vector<PagedKVCache>& caches(std::size_t i) const {
    return slots_.at(i).caches();
  }

  /// Serial flush of every slot's completed-prompt-block registrations
  /// into the trie — the scheduler calls this at the top of each tick,
  /// before admissions, so trie writes never race the parallel decode
  /// section.
  void flush_registrations();

  [[nodiscard]] const BlockAllocator& allocator() const noexcept {
    return alloc_;
  }
  [[nodiscard]] const PrefixTrie& trie() const noexcept { return trie_; }
  [[nodiscard]] const PagedKVStats& stats() const noexcept { return stats_; }

 private:
  friend class PagedKVSlot;

  /// Drop one reference; erases the trie advertisement when the block
  /// frees.
  void release_block(BlockId b);

  BlockAllocator alloc_;
  PrefixTrie trie_;
  std::size_t max_context_;
  bool sharing_;
  std::vector<PagedKVSlot> slots_;
  std::vector<std::size_t> free_slots_;  // LIFO
  PagedKVStats stats_;
};

}  // namespace et::core
