#include "core/attention.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "core/attention_math.hpp"
#include "kernels/elementwise.hpp"
#include "kernels/gemm.hpp"
#include "kernels/linear.hpp"
#include "tensor/matrix.hpp"

namespace et::core {

namespace {

using gpusim::AccessPattern;
using numeric::Precision;

constexpr std::size_t ceil_div(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

/// Tile-staging buffers shrink to whatever the device offers (kernels pick
/// smaller tiles on scratchpad-constrained hardware); only footprints that
/// are *algorithmically required* — like Eq. 6's score row — stay fixed
/// and can overflow.
std::size_t clamp_shared(const gpusim::Device& dev, std::size_t bytes) {
  return std::min(bytes, dev.spec().shared_mem_per_cta_bytes);
}

/// Q/K/context projections shared by every implementation.
struct Projections {
  tensor::MatrixF q;
  tensor::MatrixF k;
  /// V (full or condensed), or M = X·W_VOᵀ on the pre-computed path.
  tensor::MatrixF ctx;
  const PrecomputedVO* vo = nullptr;
  /// Head-major original-column map when ctx is a condensed V.
  std::vector<std::uint32_t> v_kept;
  [[nodiscard]] const std::vector<std::uint32_t>* v_kept_ptr() const {
    return v_kept.empty() ? nullptr : &v_kept;
  }
};

bool try_fused_qkv(ExecContext& ctx, const tensor::MatrixF& x,
                   const AttentionWeights& w, const AttentionConfig& cfg,
                   Projections& pr);

Projections project(ExecContext& ctx, const tensor::MatrixF& x,
                    const AttentionWeights& w, const AttentionConfig& cfg,
                    bool et_operators) {
  cfg.validate();
  kernels::LinearOptions opt;
  opt.precision = cfg.precision;

  Projections pr;
  if (et_operators && !w.has_precomputed() &&
      try_fused_qkv(ctx, x, w, cfg, pr)) {
    // Below the pruning regime E.T. also batches Q/K/V into one autotuned
    // GEMM — the "best cuBLAS routine" search of §5.2.1.
    return pr;
  }
  pr.q = kernels::linear(ctx, x, w.wq, opt, "q_linear").y;
  pr.k = kernels::linear(ctx, x, w.wk, opt, "k_linear").y;
  if (et_operators && w.has_precomputed()) {
    pr.vo = &w.vo;
    // One dense GEMM against the pre-computed (H·kept × d) matrix — the
    // fold of steps ① (V part) and ⑦ (Eq. 5).
    pr.ctx = kernels::gemm_nt(ctx, x, w.vo.weight, cfg.precision, nullptr,
                              "vo_linear");
  } else if (et_operators && w.v_condensable(cfg.num_heads)) {
    // Attention-aware row-pruned W_V: keep the GEMM output condensed so
    // step ⑥ touches only the surviving columns (§5.3.3).
    opt.scatter_row_pruned_output = false;
    auto res = kernels::linear(ctx, x, w.wv, opt, "v_linear");
    pr.ctx = std::move(res.y);
    pr.v_kept = std::move(res.nonzero_cols);
    opt.scatter_row_pruned_output = true;
  } else {
    pr.ctx = kernels::linear(ctx, x, w.wv, opt, "v_linear").y;
  }
  return pr;
}

/// TensorRT-style horizontally-fused QKV projection: when all three
/// weights are dense, one GEMM against the stacked (3d × d) weight.
bool try_fused_qkv(ExecContext& ctx, const tensor::MatrixF& x,
                   const AttentionWeights& w, const AttentionConfig& cfg,
                   Projections& pr) {
  const auto* dq = std::get_if<sparse::DenseWeight>(&w.wq);
  const auto* dkw = std::get_if<sparse::DenseWeight>(&w.wk);
  const auto* dv = std::get_if<sparse::DenseWeight>(&w.wv);
  if (dq == nullptr || dkw == nullptr || dv == nullptr) return false;

  const std::size_t d = cfg.d_model;
  tensor::MatrixF stacked(3 * d, d);
  for (std::size_t r = 0; r < d; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      stacked(r, c) = dq->matrix()(r, c);
      stacked(d + r, c) = dkw->matrix()(r, c);
      stacked(2 * d + r, c) = dv->matrix()(r, c);
    }
  }
  tensor::MatrixF qkv =
      kernels::gemm_nt(ctx, x, stacked, cfg.precision, nullptr, "qkv_linear");
  pr.q = tensor::slice_cols(qkv, 0, d);
  pr.k = tensor::slice_cols(qkv, d, d);
  pr.ctx = tensor::slice_cols(qkv, 2 * d, d);
  pr.vo = nullptr;
  return true;
}

/// Q from the decoder input, K and the context operand from the encoder
/// memory — shared by both cross-attention operators.
Projections project_cross(ExecContext& ctx, const tensor::MatrixF& x,
                          const tensor::MatrixF& memory,
                          const AttentionWeights& w,
                          const AttentionConfig& cfg) {
  kernels::LinearOptions opt;
  opt.precision = cfg.precision;
  Projections pr;
  pr.q = kernels::linear(ctx, x, w.wq, opt, "xattn_q_linear").y;
  pr.k = kernels::linear(ctx, memory, w.wk, opt, "xattn_k_linear").y;
  if (w.has_precomputed()) {
    pr.vo = &w.vo;
    pr.ctx = kernels::gemm_nt(ctx, memory, w.vo.weight, cfg.precision,
                              nullptr, "xattn_vo_linear");
  } else if (w.v_condensable(cfg.num_heads)) {
    opt.scatter_row_pruned_output = false;
    auto res = kernels::linear(ctx, memory, w.wv, opt, "xattn_v_linear");
    pr.ctx = std::move(res.y);
    pr.v_kept = std::move(res.nonzero_cols);
  } else {
    pr.ctx = kernels::linear(ctx, memory, w.wv, opt, "xattn_v_linear").y;
  }
  return pr;
}

/// Record a batched per-head GEMM kernel (one launch covering all heads),
/// e.g. torch.bmm or the TensorRT batched-GEMM step. Loads both operands
/// once, stores the result once. `score_elems` tags how many of those
/// elements belong to the S matrix (stored by Q·Kᵀ, loaded by S·V).
void record_batched_gemm(gpusim::Device& dev, std::string name,
                         std::size_t load_elems_a, std::size_t load_elems_b,
                         std::size_t store_elems, std::uint64_t flops,
                         std::size_t ctas, Precision p,
                         std::size_t score_elems = 0) {
  const std::size_t sb = numeric::storage_bytes(p);
  auto launch = dev.launch({.name = std::move(name),
                            .ctas = ctas,
                            .shared_bytes_per_cta =
                                clamp_shared(dev, 2 * 256 * 16 * sb),
                            .pattern = AccessPattern::kTiled});
  launch.load_bytes((load_elems_a + load_elems_b) * sb);
  launch.store_bytes(store_elems * sb);
  launch.score_bytes(static_cast<std::uint64_t>(score_elems) * sb);
  if (p == Precision::kFp32) {
    launch.fp_ops(flops);
  } else {
    launch.tensor_ops(flops);
  }
}

/// Record a kernel over the batched per-head score matrix (scale / mask /
/// softmax in the unfused pipelines). These kernels walk the head-major
/// S layout with transposed/strided accesses, which is why the paper
/// measures them at only ~8.6% of peak bandwidth (Fig. 12).
void record_score_stream(gpusim::Device& dev, std::string name,
                         std::size_t elems, double load_frac,
                         double store_frac, std::uint64_t flops,
                         Precision p) {
  const std::size_t sb = numeric::storage_bytes(p);
  auto launch =
      dev.launch({.name = std::move(name),
                  .ctas = std::max<std::size_t>(1, elems / 4096),
                  .shared_bytes_per_cta = 0,
                  .pattern = AccessPattern::kStrided});
  const auto loads = static_cast<std::uint64_t>(
      static_cast<double>(elems * sb) * load_frac);
  const auto stores = static_cast<std::uint64_t>(
      static_cast<double>(elems * sb) * store_frac);
  launch.load_bytes(loads);
  launch.store_bytes(stores);
  // Everything a score-stream kernel touches IS the score matrix.
  launch.score_bytes(loads + stores);
  launch.fp_ops(flops);
}

tensor::MatrixF output_linear(ExecContext& ctx, const tensor::MatrixF& z,
                              const AttentionWeights& w,
                              const AttentionConfig& cfg) {
  kernels::LinearOptions opt;
  opt.precision = cfg.precision;
  return kernels::linear(ctx, z, w.wo, opt, "out_linear").y;
}

}  // namespace

std::size_t otf_shared_bytes(const AttentionConfig& cfg, std::size_t kv_len) {
  if (kv_len == 0) kv_len = cfg.seq_len;  // self-attention
  const std::size_t acc = numeric::accumulator_bytes(cfg.precision);
  const std::size_t tile_height = 16;
  // Eq. 6: tileHeight·d_k (the Q tile) + tileHeight·kvLen (the score
  // tile row), plus a double-buffered 16×16 staging tile for K/V.
  return tile_height * cfg.d_k() * acc + tile_height * kv_len * acc +
         2 * 16 * 16 * numeric::storage_bytes(cfg.precision);
}

std::size_t flash_shared_bytes(const AttentionConfig& cfg,
                               std::size_t kv_len) {
  // Deliberately independent of how much K/V streams past the CTA — the
  // score tile is Br×Bc no matter the sequence (or memory) length, which
  // is why flash keeps fitting where Eq. 6 overflows.
  (void)kv_len;
  const std::size_t acc = numeric::accumulator_bytes(cfg.precision);
  // Eq. 6 with the kvLen-wide score row replaced by the fixed Bc-wide
  // block: Br·d_k (the Q tile) + Br·Bc (the score tile), plus
  // double-buffered 16×16 staging tiles for both K and V.
  return cfg.flash_block_rows * cfg.d_k() * acc +
         cfg.flash_block_rows * cfg.flash_block_cols * acc +
         4 * 16 * 16 * numeric::storage_bytes(cfg.precision);
}

// --------------------------------------------------------------------------
// PyTorch-like modular pipeline: every operator is its own kernel.
// --------------------------------------------------------------------------
tensor::MatrixF modular_attention(ExecContext& ctx, const tensor::MatrixF& x,
                                  const AttentionWeights& w,
                                  const AttentionConfig& cfg) {
  gpusim::Device& dev = ctx.device();
  cfg.validate();
  const std::size_t s = cfg.seq_len;
  const std::size_t d = cfg.d_model;
  const std::size_t h = cfg.num_heads;
  const std::size_t score_elems = s * s * h;
  const Precision p = cfg.precision;

  Projections pr = project(ctx, x, w, cfg, /*et_operators=*/false);

  // torch.bmm(Q, K^T): batched over heads. S is stored once here…
  record_batched_gemm(dev, "bmm_qk", s * d, s * d, score_elems,
                      2ull * s * s * d, h * ceil_div(s, 128) * ceil_div(s, 128),
                      p, score_elems);
  // Separate scale, mask, softmax kernels, each a full global round trip.
  record_score_stream(dev, "scale", score_elems, 1.0, 1.0, score_elems, p);
  record_score_stream(dev, "mask", score_elems, 1.0, 1.0, score_elems / 2, p);
  record_score_stream(dev, "softmax", score_elems, 1.0, 1.0, 5 * score_elems,
                      p);
  // …and loaded again by torch.bmm(S, V).
  record_batched_gemm(dev, "bmm_sv", score_elems, s * d, s * d,
                      2ull * s * s * d, h * ceil_div(s, 128) * ceil_div(d, 128),
                      p, score_elems);

  tensor::MatrixF z =
      dev.traffic_only()
          ? tensor::MatrixF(s, d)
          : detail::attention_math(pr.q, pr.k, pr.ctx, nullptr, nullptr, cfg,
                                   &ctx.pool());
  return output_linear(ctx, z, w, cfg);
}

// --------------------------------------------------------------------------
// TensorRT-like pipeline: fused QKV projection, batched score GEMMs,
// vertically-fused pointwise ops — but intermediates still in global
// memory (steps ①,③,④,⑤,⑥,⑦ of Fig. 12).
// --------------------------------------------------------------------------
tensor::MatrixF fused_attention(ExecContext& ctx, const tensor::MatrixF& x,
                                const AttentionWeights& w,
                                const AttentionConfig& cfg,
                                bool aggressive_fusion) {
  gpusim::Device& dev = ctx.device();
  cfg.validate();
  const std::size_t s = cfg.seq_len;
  const std::size_t d = cfg.d_model;
  const std::size_t h = cfg.num_heads;
  const std::size_t score_elems = s * s * h;
  const Precision p = cfg.precision;

  Projections pr;
  if (!try_fused_qkv(ctx, x, w, cfg, pr)) {
    pr = project(ctx, x, w, cfg, /*et_operators=*/false);
  }

  // ③ batched Q·Kᵀ with the scaling folded in (TensorRT fuses the
  // element-wise scale into the GEMM epilogue).
  record_batched_gemm(dev, "trt_qk_scale", s * d, s * d, score_elems,
                      2ull * s * s * d + score_elems,
                      h * ceil_div(s, 128) * ceil_div(s, 128), p, score_elems);
  if (aggressive_fusion) {
    // FasterTransformer: ④+⑤ fused — S transits global memory once.
    record_score_stream(dev, "ft_mask_softmax", score_elems, 1.0, 1.0,
                        5 * score_elems + score_elems / 2, p);
  } else {
    // ④ masking, ⑤ softmax: two kernels (per Fig. 12's step list).
    record_score_stream(dev, "trt_mask", score_elems, 1.0, 1.0,
                        score_elems / 2, p);
    record_score_stream(dev, "trt_softmax", score_elems, 1.0, 1.0,
                        5 * score_elems, p);
  }
  // ⑥ batched S·V.
  record_batched_gemm(dev, "trt_sv", score_elems, s * d, s * d,
                      2ull * s * s * d, h * ceil_div(s, 128) * ceil_div(d, 128),
                      p, score_elems);

  tensor::MatrixF z =
      dev.traffic_only()
          ? tensor::MatrixF(s, d)
          : detail::attention_math(pr.q, pr.k, pr.ctx, nullptr, nullptr, cfg,
                                   &ctx.pool());
  return output_linear(ctx, z, w, cfg);
}

// --------------------------------------------------------------------------
// E.T. full on-the-fly operator: steps ②–⑥ in one kernel.
// --------------------------------------------------------------------------
tensor::MatrixF otf_attention(ExecContext& ctx, const tensor::MatrixF& x,
                              const AttentionWeights& w,
                              const AttentionConfig& cfg) {
  gpusim::Device& dev = ctx.device();
  cfg.validate();
  const std::size_t s = cfg.seq_len;
  const std::size_t d = cfg.d_model;
  const std::size_t h = cfg.num_heads;
  const std::size_t sb = numeric::storage_bytes(cfg.precision);
  const Precision p = cfg.precision;
  const bool pre = w.has_precomputed();

  Projections pr = project(ctx, x, w, cfg, /*et_operators=*/true);

  const std::size_t row_tiles = ceil_div(s, 16);
  // Without pre-computation a CTA owns (head, row-tile); with it the CTA
  // iterates all heads for its row tile so the Eq. 4/5 head-sum stays in
  // registers.
  const std::size_t ctas = pre ? row_tiles : row_tiles * h;
  const std::size_t ctx_cols = pr.ctx.cols();

  auto launch = dev.launch({.name = "otf_attention",
                            .ctas = ctas,
                            .shared_bytes_per_cta = otf_shared_bytes(cfg),
                            .pattern = AccessPattern::kTiled});
  // Q read once; K and the context operand re-read once per row tile —
  // the deliberate extra-loads-for-zero-intermediate-stores trade of
  // §5.2.5 (Fig. 11).
  launch.load_bytes(static_cast<std::uint64_t>(s) * d * sb);
  launch.load_bytes(static_cast<std::uint64_t>(row_tiles) * s * d * sb);
  launch.load_bytes(static_cast<std::uint64_t>(row_tiles) * s * ctx_cols * sb);
  // Only the final output touches global memory. With a condensed context
  // operand only the surviving columns are written.
  launch.store_bytes(static_cast<std::uint64_t>(s) *
                     (pr.vo != nullptr ? d : ctx_cols) * sb);

  const std::uint64_t qk_flops = 2ull * s * s * d;
  const std::uint64_t sv_flops = 2ull * s * s * ctx_cols;
  const std::uint64_t pointwise =
      s * d /*scale*/ + 5ull * s * s * h /*softmax*/ + s * s * h / 2 /*mask*/;
  if (p == Precision::kFp32) {
    launch.fp_ops(qk_flops + sv_flops + pointwise);
  } else {
    launch.tensor_ops(qk_flops + sv_flops);
    launch.fp_ops(pointwise);
  }
  launch.finish();

  tensor::MatrixF z =
      dev.traffic_only()
          ? tensor::MatrixF(s, d)
          : detail::attention_math(pr.q, pr.k, pr.ctx, pr.vo,
                                   pr.v_kept_ptr(), cfg, &ctx.pool());
  if (pre) return z;  // Eq. 5: the output linear is already folded in.
  return output_linear(ctx, z, w, cfg);
}

// --------------------------------------------------------------------------
// Streaming flash operator (FlashAttention-2): one kernel; each CTA owns a
// Br-row query tile of one head — the seq-length work partitioning — and
// streams K/V through its online softmax in Bc-column blocks. Q·Kᵀ and S
// never exist in global memory at ANY sequence length; the only
// score-derived global traffic is the per-row (m, ℓ) statistics, O(N).
// --------------------------------------------------------------------------
tensor::MatrixF flash_attention(ExecContext& ctx, const tensor::MatrixF& x,
                                const AttentionWeights& w,
                                const AttentionConfig& cfg) {
  gpusim::Device& dev = ctx.device();
  cfg.validate();
  const std::size_t s = cfg.seq_len;
  const std::size_t d = cfg.d_model;
  const std::size_t h = cfg.num_heads;
  const std::size_t sb = numeric::storage_bytes(cfg.precision);
  const std::size_t acc = numeric::accumulator_bytes(cfg.precision);
  const Precision p = cfg.precision;
  const bool pre = w.has_precomputed();

  Projections pr = project(ctx, x, w, cfg, /*et_operators=*/true);

  const std::size_t row_tiles = ceil_div(s, cfg.flash_block_rows);
  const std::size_t kv_blocks = ceil_div(s, cfg.flash_block_cols);
  // Same CTA ownership rule as OTF (pre-computation keeps the head sum in
  // registers), but over Br-row tiles instead of 16-row ones.
  const std::size_t ctas = pre ? row_tiles : row_tiles * h;
  const std::size_t ctx_cols = pr.ctx.cols();

  auto launch = dev.launch({.name = "flash_attention",
                            .ctas = ctas,
                            .shared_bytes_per_cta = flash_shared_bytes(cfg),
                            .pattern = AccessPattern::kTiled});
  // Q read once; K and the context operand re-read once per Br-row tile —
  // the OTF trade again, but Br = 64 re-reads 4x less than 16-row tiles.
  launch.load_bytes(static_cast<std::uint64_t>(s) * d * sb);
  launch.load_bytes(static_cast<std::uint64_t>(row_tiles) * s * d * sb);
  launch.load_bytes(static_cast<std::uint64_t>(row_tiles) * s * ctx_cols * sb);
  launch.store_bytes(static_cast<std::uint64_t>(s) *
                     (pr.vo != nullptr ? d : ctx_cols) * sb);
  // The running (m, ℓ) pair per row and head — the logsumexp line real
  // flash kernels persist — is the operator's entire score-side global
  // traffic: linear in N where partial-OTF's S round trip is quadratic.
  const std::uint64_t stats_bytes = 2ull * s * h * acc;
  launch.store_bytes(stats_bytes);
  launch.score_bytes(stats_bytes);

  const std::uint64_t qk_flops = 2ull * s * s * d;
  const std::uint64_t sv_flops = 2ull * s * s * ctx_cols;
  // Online softmax costs one extra op per score (the running-max compare)
  // plus an accumulator rescale of each row's output block per K/V block.
  const std::uint64_t pointwise =
      s * d /*scale*/ + 6ull * s * s * h /*online softmax*/ +
      static_cast<std::uint64_t>(s) * kv_blocks * (ctx_cols + 2 * h)
      /*rescale*/;
  if (p == Precision::kFp32) {
    launch.fp_ops(qk_flops + sv_flops + pointwise);
  } else {
    launch.tensor_ops(qk_flops + sv_flops);
    launch.fp_ops(pointwise);
  }
  launch.finish();

  tensor::MatrixF z =
      dev.traffic_only()
          ? tensor::MatrixF(s, d)
          : detail::flash_attention_math(pr.q, pr.k, pr.ctx, pr.vo,
                                         pr.v_kept_ptr(), cfg, &ctx.pool());
  if (pre) return z;  // Eq. 5: the output linear is already folded in.
  return output_linear(ctx, z, w, cfg);
}

// --------------------------------------------------------------------------
// E.T. on-the-fly cross-attention: same kernel structure as otf_attention,
// with K/V projected from the encoder memory.
// --------------------------------------------------------------------------
tensor::MatrixF otf_cross_attention(ExecContext& ctx,
                                    const tensor::MatrixF& x,
                                    const tensor::MatrixF& memory,
                                    const AttentionWeights& w,
                                    const AttentionConfig& cfg) {
  gpusim::Device& dev = ctx.device();
  cfg.validate();
  const std::size_t s = cfg.seq_len;
  const std::size_t kv = memory.rows();
  const std::size_t d = cfg.d_model;
  const std::size_t sb = numeric::storage_bytes(cfg.precision);
  const Precision p = cfg.precision;
  const bool pre = w.has_precomputed();
  assert(x.rows() == s && memory.cols() == d);

  Projections pr = project_cross(ctx, x, memory, w, cfg);

  const std::size_t row_tiles = ceil_div(s, 16);
  const std::size_t ctas = pre ? row_tiles : row_tiles * cfg.num_heads;
  const std::size_t ctx_cols = pr.ctx.cols();

  auto launch = dev.launch({.name = "otf_cross_attention",
                            .ctas = ctas,
                            .shared_bytes_per_cta = otf_shared_bytes(cfg, kv),
                            .pattern = AccessPattern::kTiled});
  launch.load_bytes(static_cast<std::uint64_t>(s) * d * sb);
  launch.load_bytes(static_cast<std::uint64_t>(row_tiles) * kv * d * sb);
  launch.load_bytes(static_cast<std::uint64_t>(row_tiles) * kv * ctx_cols *
                    sb);
  launch.store_bytes(static_cast<std::uint64_t>(s) *
                     (pr.vo != nullptr ? d : ctx_cols) * sb);
  const std::uint64_t qk_flops = 2ull * s * kv * d;
  const std::uint64_t sv_flops = 2ull * s * kv * ctx_cols;
  const std::uint64_t pointwise =
      s * d + 5ull * s * kv * cfg.num_heads;
  if (p == Precision::kFp32) {
    launch.fp_ops(qk_flops + sv_flops + pointwise);
  } else {
    launch.tensor_ops(qk_flops + sv_flops);
    launch.fp_ops(pointwise);
  }
  launch.finish();

  tensor::MatrixF z =
      dev.traffic_only()
          ? tensor::MatrixF(s, d)
          : detail::attention_math(pr.q, pr.k, pr.ctx, pr.vo,
                                   pr.v_kept_ptr(), cfg, &ctx.pool());
  if (pre) return z;
  return output_linear(ctx, z, w, cfg);
}

// --------------------------------------------------------------------------
// Streaming cross-attention: the flash kernel structure with K/V from the
// encoder memory. The memory is the streamed operand, so the score tile
// stays Br×Bc however long the encoder output grows — where the OTF
// cross kernel's Eq. 6 row is kv wide.
// --------------------------------------------------------------------------
tensor::MatrixF flash_cross_attention(ExecContext& ctx,
                                      const tensor::MatrixF& x,
                                      const tensor::MatrixF& memory,
                                      const AttentionWeights& w,
                                      const AttentionConfig& cfg) {
  gpusim::Device& dev = ctx.device();
  cfg.validate();
  const std::size_t s = cfg.seq_len;
  const std::size_t kv = memory.rows();
  const std::size_t d = cfg.d_model;
  const std::size_t h = cfg.num_heads;
  const std::size_t sb = numeric::storage_bytes(cfg.precision);
  const std::size_t acc = numeric::accumulator_bytes(cfg.precision);
  const Precision p = cfg.precision;
  const bool pre = w.has_precomputed();
  assert(x.rows() == s && memory.cols() == d);

  Projections pr = project_cross(ctx, x, memory, w, cfg);

  const std::size_t row_tiles = ceil_div(s, cfg.flash_block_rows);
  const std::size_t kv_blocks = ceil_div(kv, cfg.flash_block_cols);
  const std::size_t ctas = pre ? row_tiles : row_tiles * h;
  const std::size_t ctx_cols = pr.ctx.cols();

  auto launch = dev.launch({.name = "flash_cross_attention",
                            .ctas = ctas,
                            .shared_bytes_per_cta =
                                flash_shared_bytes(cfg, kv),
                            .pattern = AccessPattern::kTiled});
  launch.load_bytes(static_cast<std::uint64_t>(s) * d * sb);
  launch.load_bytes(static_cast<std::uint64_t>(row_tiles) * kv * d * sb);
  launch.load_bytes(static_cast<std::uint64_t>(row_tiles) * kv * ctx_cols *
                    sb);
  launch.store_bytes(static_cast<std::uint64_t>(s) *
                     (pr.vo != nullptr ? d : ctx_cols) * sb);
  const std::uint64_t stats_bytes = 2ull * s * h * acc;
  launch.store_bytes(stats_bytes);
  launch.score_bytes(stats_bytes);
  const std::uint64_t qk_flops = 2ull * s * kv * d;
  const std::uint64_t sv_flops = 2ull * s * kv * ctx_cols;
  const std::uint64_t pointwise =
      s * d + 6ull * s * kv * h +
      static_cast<std::uint64_t>(s) * kv_blocks * (ctx_cols + 2 * h);
  if (p == Precision::kFp32) {
    launch.fp_ops(qk_flops + sv_flops + pointwise);
  } else {
    launch.tensor_ops(qk_flops + sv_flops);
    launch.fp_ops(pointwise);
  }
  launch.finish();

  tensor::MatrixF z =
      dev.traffic_only()
          ? tensor::MatrixF(s, d)
          : detail::flash_attention_math(pr.q, pr.k, pr.ctx, pr.vo,
                                         pr.v_kept_ptr(), cfg, &ctx.pool());
  if (pre) return z;
  return output_linear(ctx, z, w, cfg);
}

// --------------------------------------------------------------------------
// E.T. partial on-the-fly operator (§3.2): ②–③ as one outer-product GEMM
// kernel (Q, K read once; S written once), ④–⑥ as a second fused kernel.
// --------------------------------------------------------------------------
tensor::MatrixF partial_otf_attention(ExecContext& ctx,
                                      const tensor::MatrixF& x,
                                      const AttentionWeights& w,
                                      const AttentionConfig& cfg) {
  gpusim::Device& dev = ctx.device();
  cfg.validate();
  const std::size_t s = cfg.seq_len;
  const std::size_t d = cfg.d_model;
  const std::size_t h = cfg.num_heads;
  const std::size_t sb = numeric::storage_bytes(cfg.precision);
  const std::size_t acc = numeric::accumulator_bytes(cfg.precision);
  const std::size_t score_elems = s * s * h;
  const Precision p = cfg.precision;
  const bool pre = w.has_precomputed();

  Projections pr = project(ctx, x, w, cfg, /*et_operators=*/true);
  const std::size_t ctx_cols = pr.ctx.cols();

  // Kernel A: ②–③. Outer-product decomposition reads Q and K exactly
  // once and writes the full score matrix once.
  {
    auto launch = dev.launch(
        {.name = "partial_otf_qk",
         .ctas = h * ceil_div(s, 128) * ceil_div(s, 128),
         .shared_bytes_per_cta = clamp_shared(dev, 2 * 256 * 16 * sb),
         .pattern = AccessPattern::kTiled});
    launch.load_bytes(2ull * s * d * sb);
    launch.store_bytes(static_cast<std::uint64_t>(score_elems) * sb);
    launch.score_bytes(static_cast<std::uint64_t>(score_elems) * sb);
    const std::uint64_t flops = 2ull * s * s * d + s * d /*scale*/;
    if (p == Precision::kFp32) {
      launch.fp_ops(flops);
    } else {
      launch.tensor_ops(2ull * s * s * d);
      launch.fp_ops(s * d);
    }
  }

  // Kernel B: ④–⑥. A CTA stages up to 32 score rows in shared memory,
  // masks, softmaxes and multiplies against the context operand, which is
  // re-read once per row tile (less re-reading than the full OTF kernel's
  // 16-row granularity, at the price of S traffic). On devices with a
  // small scratchpad the row tile shrinks — V re-reads grow accordingly,
  // which the traffic accounting below reflects.
  {
    const std::size_t staging = 2 * 16 * 16 * sb;
    const std::size_t capacity = dev.spec().shared_mem_per_cta_bytes;
    const std::size_t rows_per_cta = std::clamp<std::size_t>(
        capacity > staging ? (capacity - staging) / (s * acc) : 1, 1, 32);
    const std::size_t row_tiles = ceil_div(s, rows_per_cta);
    auto launch = dev.launch(
        {.name = "partial_otf_softmax_sv",
         .ctas = (pre ? 1 : h) * row_tiles,
         .shared_bytes_per_cta = rows_per_cta * s * acc + staging,
         .pattern = AccessPattern::kTiled});
    launch.load_bytes(static_cast<std::uint64_t>(score_elems) * sb);
    launch.score_bytes(static_cast<std::uint64_t>(score_elems) * sb);
    launch.load_bytes(static_cast<std::uint64_t>(row_tiles) * s * ctx_cols *
                      sb);
    launch.store_bytes(static_cast<std::uint64_t>(s) * d * sb);
    const std::uint64_t sv_flops = 2ull * s * s * ctx_cols;
    const std::uint64_t pointwise = 5ull * score_elems + score_elems / 2;
    if (p == Precision::kFp32) {
      launch.fp_ops(sv_flops + pointwise);
    } else {
      launch.tensor_ops(sv_flops);
      launch.fp_ops(pointwise);
    }
  }

  tensor::MatrixF z =
      dev.traffic_only()
          ? tensor::MatrixF(s, d)
          : detail::attention_math(pr.q, pr.k, pr.ctx, pr.vo,
                                   pr.v_kept_ptr(), cfg, &ctx.pool());
  if (pre) return z;
  return output_linear(ctx, z, w, cfg);
}

}  // namespace et::core
