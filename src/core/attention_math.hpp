// Host-side numerical core shared by every attention implementation.
//
// The four implementations in attention.hpp differ in *kernel structure*
// (launch counts, traffic, where intermediates live) — that is what the
// simulated Device records. Their arithmetic is the same function, so it
// is factored here once, with the precision policy applied at the same
// algorithmic points a tensor-core kernel would round:
//   - Q·Kᵀ accumulation (per policy, pure-FP16 rounds every step — the
//     §3.3 overflow site),
//   - the scaling operator, before or after the multiply (§3.3 reorder),
//   - softmax output,
//   - the S·V (or S·M) accumulation.
#pragma once

#include "core/config.hpp"
#include "core/thread_pool.hpp"
#include "core/weights.hpp"
#include "tensor/matrix.hpp"

namespace et::core::detail {

/// Compute multi-head attention output (seq × d_model) from Q and K
/// (seq × d_model) and one of three context operands:
///   - `context` = V (seq × d_model), when `vo` and `v_kept` are null,
///     producing the concatenated Z (the caller then applies W_O);
///   - `context` = M = X·W_VOᵀ (seq × H·kept), when `vo` is non-null,
///     producing the already-combined output scattered to full width
///     (Eq. 5 path; no W_O linear follows);
///   - `context` = condensed V (seq × H·K), when `v_kept` is non-null:
///     the attention-aware row-pruned W_V case. `v_kept` lists, head-major,
///     the original d_model column each condensed column maps to; the
///     returned Z is full width with zeros at pruned positions (W_O linear
///     still follows).
///
/// Rows of the output are independent (even in the W_VO head-sum case the
/// accumulation is row-private), so a non-null `pool` partitions the row
/// loop with ThreadPool's thread-count-invariant chunks; the per-row math
/// is untouched, so results are bit-identical at any thread count. This is
/// a pure-math region — no Device calls happen inside.
[[nodiscard]] tensor::MatrixF attention_math(
    const tensor::MatrixF& q, const tensor::MatrixF& k,
    const tensor::MatrixF& context, const PrecomputedVO* vo,
    const std::vector<std::uint32_t>* v_kept, const AttentionConfig& cfg,
    ThreadPool* pool = nullptr);

/// Streaming (FlashAttention-2) evaluation of the same function, with the
/// same three context-operand forms. Keys/values are consumed in
/// cfg.flash_block_cols-wide blocks through an online softmax: each query
/// row carries a running max m and denominator ℓ, and every new block
/// rescales the existing partial output by exp(m_old − m_new) — so no
/// score row is ever held at full width, mirroring what the simulated
/// flash kernel keeps out of global memory.
///
/// Numerics: Q·Kᵀ follows the same precision policy (and §3.3 scale
/// reordering / pure-FP16 overflow behavior) as attention_math; the
/// output accumulator stays FP32 across blocks (flash kernels keep O in
/// FP32 registers while rescaling) with multiplicands rounded to the
/// policy's storage type, and a single round to storage after the final
/// 1/ℓ normalization. The blockwise reassociation makes results
/// bounded-error — not bit-identical — vs attention_math.
///
/// Work is partitioned across cfg.flash_block_rows-row query tiles (the
/// FlashAttention-2 seq-length split) on `pool`; each row is computed by
/// exactly one tile with tile-size-dependent but thread-count-independent
/// math, so results are bit-identical at any thread count.
[[nodiscard]] tensor::MatrixF flash_attention_math(
    const tensor::MatrixF& q, const tensor::MatrixF& k,
    const tensor::MatrixF& context, const PrecomputedVO* vo,
    const std::vector<std::uint32_t>* v_kept, const AttentionConfig& cfg,
    ThreadPool* pool = nullptr);

}  // namespace et::core::detail
