// Configuration of one self-attention computation.
#pragma once

#include <cmath>
#include <stdexcept>
#include <cstddef>

#include "numeric/precision.hpp"

namespace et::core {

struct AttentionConfig {
  std::size_t seq_len = 128;
  std::size_t d_model = 768;
  std::size_t num_heads = 12;

  /// Arithmetic policy for the attention kernels. The paper's E.T. runs
  /// pure FP16 (enabled by the scale reordering); the baselines need
  /// mixed precision to avoid the Fig. 4 overflow.
  numeric::Precision precision = numeric::Precision::kFp32;

  /// §3.3: apply the 1/sqrt(d_k) scaling to Q *before* Q·Kᵀ instead of to
  /// the scores after. Mathematically identical; numerically it keeps the
  /// products inside the FP16 range.
  bool scale_before_multiply = true;

  /// Apply the §2.1 lower-triangular mask (decoder-style models).
  bool causal_mask = true;

  /// BERT-style padding mask: keys/values at positions >= valid_len are
  /// excluded from every query's softmax (step ④ of Fig. 3 masks padding
  /// in encoder-only models). 0 means "no padding" (all positions valid).
  std::size_t valid_len = 0;

  /// Flash-attention tile shape: each flash CTA owns a Br-row query tile
  /// of one head and streams K/V in Bc-column blocks through its online
  /// softmax (FlashAttention-2 partitions the seq-length dimension this
  /// way). Only the tile — never a full score row — lives in shared
  /// memory, so flash_shared_bytes is seq_len-independent. Tests shrink
  /// these to cross tile boundaries at small sizes.
  std::size_t flash_block_rows = 64;  ///< Br
  std::size_t flash_block_cols = 64;  ///< Bc

  [[nodiscard]] std::size_t d_k() const noexcept {
    return d_model / num_heads;
  }
  [[nodiscard]] float scale() const noexcept {
    return 1.0f / std::sqrt(static_cast<float>(d_k()));
  }

  /// Throws std::invalid_argument on an inconsistent configuration.
  void validate() const {
    if (num_heads == 0 || d_model == 0 || seq_len == 0) {
      throw std::invalid_argument(
          "AttentionConfig: seq_len, d_model and num_heads must be nonzero");
    }
    if (d_model % num_heads != 0) {
      throw std::invalid_argument(
          "AttentionConfig: d_model must be divisible by num_heads");
    }
    if (valid_len > seq_len) {
      throw std::invalid_argument(
          "AttentionConfig: valid_len exceeds seq_len");
    }
    if (flash_block_rows == 0 || flash_block_cols == 0) {
      throw std::invalid_argument(
          "AttentionConfig: flash tile dimensions must be nonzero");
    }
  }
};

}  // namespace et::core
