#include "core/otf_measured.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "gpusim/cta_engine.hpp"
#include "kernels/linear.hpp"

namespace et::core {

tensor::MatrixF otf_attention_measured(gpusim::Device& dev,
                                       const tensor::MatrixF& x,
                                       const AttentionWeights& w,
                                       const AttentionConfig& cfg) {
  if (cfg.precision != numeric::Precision::kFp32) {
    throw std::invalid_argument(
        "otf_attention_measured audits traffic in fp32 only");
  }
  if (w.has_precomputed()) {
    throw std::invalid_argument(
        "otf_attention_measured: precomputed path not supported");
  }

  const std::size_t s = cfg.seq_len;
  const std::size_t d = cfg.d_model;
  const std::size_t heads = cfg.num_heads;
  const std::size_t dk = cfg.d_k();
  const float scale = cfg.scale();

  kernels::LinearOptions opt;
  opt.precision = cfg.precision;
  // The CTA engine interprets serially; a serial context for the linears
  // keeps this instrumented path single-threaded end to end.
  ExecContext exec(dev);
  const tensor::MatrixF q = kernels::linear(exec, x, w.wq, opt, "q_linear").y;
  const tensor::MatrixF k = kernels::linear(exec, x, w.wk, opt, "k_linear").y;
  const tensor::MatrixF v = kernels::linear(exec, x, w.wv, opt, "v_linear").y;

  constexpr std::size_t kTileRows = 16;
  const std::size_t row_tiles = (s + kTileRows - 1) / kTileRows;

  tensor::MatrixF z(s, d);
  gpusim::CtaLaunchConfig launch_cfg;
  launch_cfg.name = "otf_attention_measured";
  launch_cfg.num_ctas = heads * row_tiles;
  launch_cfg.element_bytes = numeric::storage_bytes(cfg.precision);
  launch_cfg.pattern = gpusim::AccessPattern::kTiled;

  run_cta_kernel(dev, launch_cfg, [&](gpusim::CtaContext& ctx) {
    const std::size_t h = ctx.cta_id() / row_tiles;
    const std::size_t tile = ctx.cta_id() % row_tiles;
    const std::size_t r0 = tile * kTileRows;
    const std::size_t rows = std::min(kTileRows, s - r0);

    // ② stage & pre-scale the Q tile in shared memory.
    auto q_sh = ctx.shared().alloc_floats(rows * dk);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t c = 0; c < dk; ++c) {
        const float qv = ctx.load(q, r0 + i, h * dk + c);
        q_sh[i * dk + c] = cfg.scale_before_multiply ? qv * scale : qv;
        ctx.count_fp_ops(1);
      }
    }
    // ③ score tile rows live entirely in shared memory (Eq. 6).
    auto scores = ctx.shared().alloc_floats(rows * s);
    auto k_sh = ctx.shared().alloc_floats(kTileRows * dk);  // staging chunk
    for (std::size_t j0 = 0; j0 < s; j0 += kTileRows) {
      const std::size_t chunk = std::min(kTileRows, s - j0);
      // Each K chunk is loaded from global memory once per CTA and reused
      // by every row of the Q tile — the deliberate re-read across CTAs.
      for (std::size_t j = 0; j < chunk; ++j) {
        for (std::size_t c = 0; c < dk; ++c) {
          k_sh[j * dk + c] = ctx.load(k, j0 + j, h * dk + c);
        }
      }
      for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t j = 0; j < chunk; ++j) {
          float acc = 0.0f;
          for (std::size_t c = 0; c < dk; ++c) {
            acc += q_sh[i * dk + c] * k_sh[j * dk + c];
          }
          ctx.count_tensor_ops(2 * dk);
          if (!cfg.scale_before_multiply) acc *= scale;
          scores[i * s + j0 + j] = acc;
        }
      }
    }
    // ④/⑤ mask + softmax, all in shared memory.
    for (std::size_t i = 0; i < rows; ++i) {
      if (cfg.causal_mask) {
        for (std::size_t j = r0 + i + 1; j < s; ++j) {
          scores[i * s + j] = -std::numeric_limits<float>::infinity();
        }
      }
      float mx = -std::numeric_limits<float>::infinity();
      for (std::size_t j = 0; j < s; ++j) {
        mx = std::max(mx, scores[i * s + j]);
      }
      float sum = 0.0f;
      for (std::size_t j = 0; j < s; ++j) {
        scores[i * s + j] = std::exp(scores[i * s + j] - mx);
        sum += scores[i * s + j];
      }
      const float inv = sum > 0.0f ? 1.0f / sum : 0.0f;
      for (std::size_t j = 0; j < s; ++j) scores[i * s + j] *= inv;
      ctx.count_fp_ops(5 * s);
    }
    // ⑥ multiply with V, chunk-staged the same way; accumulate in shared.
    auto out_acc = ctx.shared().alloc_floats(rows * dk);
    std::fill(out_acc.begin(), out_acc.end(), 0.0f);
    auto v_sh = ctx.shared().alloc_floats(kTileRows * dk);
    for (std::size_t j0 = 0; j0 < s; j0 += kTileRows) {
      const std::size_t chunk = std::min(kTileRows, s - j0);
      for (std::size_t j = 0; j < chunk; ++j) {
        for (std::size_t c = 0; c < dk; ++c) {
          v_sh[j * dk + c] = ctx.load(v, j0 + j, h * dk + c);
        }
      }
      for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t c = 0; c < dk; ++c) {
          float acc = out_acc[i * dk + c];
          for (std::size_t j = 0; j < chunk; ++j) {
            acc += scores[i * s + j0 + j] * v_sh[j * dk + c];
          }
          out_acc[i * dk + c] = acc;
        }
        ctx.count_tensor_ops(2 * chunk * dk);
      }
    }
    // Only the final tile leaves the CTA.
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t c = 0; c < dk; ++c) {
        ctx.store(z, r0 + i, h * dk + c, out_acc[i * dk + c]);
      }
    }
  });

  return kernels::linear(exec, z, w.wo, opt, "out_linear").y;
}

}  // namespace et::core
