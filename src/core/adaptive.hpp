// Sequence-length-aware adaptive dispatch (§3.2, §5.2.2).
//
// E.T. switches from the full on-the-fly operator to the partial one when
// the sequence grows long enough that re-reading K/V per row tile costs
// more than materializing the score matrix once (the paper finds the
// crossover at seqLen ≈ 224 on V100S), or when the Eq. 6 shared-memory
// footprint no longer fits. An auto-tune mode replays both variants on a
// scratch traffic-only device and picks the lower modeled latency —
// mirroring how E.T. "automatically searches through various
// implementations and chooses the optimal one" (§5.2.1).
#pragma once

#include "core/attention.hpp"
#include "core/config.hpp"
#include "core/weights.hpp"
#include "gpusim/device.hpp"

namespace et::core {

enum class AttentionImpl { kModular, kFused, kOtf, kPartialOtf };

[[nodiscard]] constexpr std::string_view to_string(AttentionImpl i) noexcept {
  switch (i) {
    case AttentionImpl::kModular: return "modular";
    case AttentionImpl::kFused: return "fused";
    case AttentionImpl::kOtf: return "otf";
    case AttentionImpl::kPartialOtf: return "partial_otf";
  }
  return "?";
}

struct AdaptivePolicy {
  /// Fixed crossover: use partial OTF at seq_len > this (paper: 224).
  std::size_t partial_otf_min_seq = 224;
  /// When true, ignore the fixed threshold and decide by replaying both
  /// operators through the latency model.
  bool auto_tune = false;
  /// Batched decode crossover: the serving scheduler fuses per-slot q/k/v
  /// projections into one batched GEMM only when at least this many slots
  /// are active in a tick. A batch of one pays the fused path's
  /// bookkeeping for zero amortization, so the per-slot path (identical
  /// math, one sequence per launch) wins below the threshold.
  std::size_t batched_decode_min_slots = 2;
};

/// Batch-aware side of the adaptive dispatch: should a decode tick over
/// `active_slots` sequences take the fused batched path?
[[nodiscard]] bool use_batched_decode(const AdaptivePolicy& policy,
                                      std::size_t active_slots) noexcept;

/// Decide which E.T. operator to run for this configuration. A pure query
/// against the device spec (auto-tune replays on internal scratch
/// devices), so it deliberately keeps the const Device& signature.
[[nodiscard]] AttentionImpl choose_attention_impl(
    const gpusim::Device& dev, const tensor::MatrixF& x,
    const AttentionWeights& w, const AttentionConfig& cfg,
    const AdaptivePolicy& policy = {});

/// Run the operator choose_attention_impl selects. Resilient: if the
/// chosen operator fails with a gpusim::KernelFault or SharedMemOverflow,
/// it walks the degradation chain otf → partial_otf → fused → modular
/// (every implementation computes the same function, so the safe path is
/// always a valid substitute). Each hop is recorded via
/// Device::note_fallback and surfaces in the profiler report; only a fault
/// in the modular baseline itself propagates.
[[nodiscard]] tensor::MatrixF adaptive_attention(
    ExecContext& ctx, const tensor::MatrixF& x, const AttentionWeights& w,
    const AttentionConfig& cfg, const AdaptivePolicy& policy = {});

}  // namespace et::core
