// Sequence-length-aware adaptive dispatch (§3.2, §5.2.2).
//
// E.T. switches from the full on-the-fly operator to the partial one when
// the sequence grows long enough that re-reading K/V per row tile costs
// more than materializing the score matrix once (the paper finds the
// crossover at seqLen ≈ 224 on V100S), or when the Eq. 6 shared-memory
// footprint no longer fits. The streaming flash operator supersedes both
// once the sequence spans more than one OTF row tile: its Br-row tiling
// re-reads K/V 4x less than OTF and its score traffic is O(N) where
// partial-OTF's is O(N²), so OTF keeps only the short-sequence regime and
// partial-OTF the degraded one (flash faulted or its tile not fitting).
// An auto-tune mode replays every feasible variant on a scratch
// traffic-only device and picks the lowest modeled latency — mirroring
// how E.T. "automatically searches through various implementations and
// chooses the optimal one" (§5.2.1).
#pragma once

#include <optional>

#include "core/attention.hpp"
#include "core/config.hpp"
#include "core/weights.hpp"
#include "gpusim/device.hpp"

namespace et::core {

enum class AttentionImpl { kModular, kFused, kOtf, kPartialOtf, kFlash };

[[nodiscard]] constexpr std::string_view to_string(AttentionImpl i) noexcept {
  switch (i) {
    case AttentionImpl::kModular: return "modular";
    case AttentionImpl::kFused: return "fused";
    case AttentionImpl::kOtf: return "otf";
    case AttentionImpl::kPartialOtf: return "partial_otf";
    case AttentionImpl::kFlash: return "flash";
  }
  return "?";
}

/// The single inverse of to_string: parse an operator name (e.g. a CLI
/// token or config value). Defined by round trip over the enumerators, so
/// a new AttentionImpl is parseable the moment to_string knows it.
[[nodiscard]] constexpr std::optional<AttentionImpl> from_string(
    std::string_view name) noexcept {
  constexpr AttentionImpl kAll[] = {
      AttentionImpl::kModular, AttentionImpl::kFused, AttentionImpl::kOtf,
      AttentionImpl::kPartialOtf, AttentionImpl::kFlash};
  for (AttentionImpl i : kAll) {
    if (to_string(i) == name) return i;
  }
  return std::nullopt;
}

struct AdaptivePolicy {
  /// Fixed crossover: use partial OTF at seq_len > this (paper: 224).
  /// Only reached when flash is not feasible — see flash_min_seq.
  std::size_t partial_otf_min_seq = 224;
  /// Fixed crossover: use flash at seq_len > this when its tile fits
  /// shared memory. Defaults to OTF's 16-row tile height: within one such
  /// tile the two kernels stream K/V identically and flash only adds its
  /// (m, ℓ) statistics traffic, while every longer sequence re-reads K/V
  /// per row tile — where flash's Br-row tiles win. Matches the
  /// auto-tune replay on V100S/A100 (see bench/fig08_otf_vs_seqlen).
  std::size_t flash_min_seq = 16;
  /// Bypass selection entirely and start the degradation chain at this
  /// implementation — the single mechanism behind et_cli --attention,
  /// bench ablation forcing, and per-impl tests (no hand-rolled call
  /// sites). Launch-time failures still degrade down the chain.
  std::optional<AttentionImpl> forced;
  /// When true, ignore the fixed thresholds and decide by replaying every
  /// feasible operator through the latency model.
  bool auto_tune = false;
  /// Batched decode crossover: the serving scheduler fuses per-slot q/k/v
  /// projections into one batched GEMM only when at least this many slots
  /// are active in a tick. A batch of one pays the fused path's
  /// bookkeeping for zero amortization, so the per-slot path (identical
  /// math, one sequence per launch) wins below the threshold.
  std::size_t batched_decode_min_slots = 2;
};

/// Batch-aware side of the adaptive dispatch: should a decode tick over
/// `active_slots` sequences take the fused batched path?
[[nodiscard]] bool use_batched_decode(const AdaptivePolicy& policy,
                                      std::size_t active_slots) noexcept;

/// Decide which E.T. operator to run for this configuration. A pure query
/// against the device spec (auto-tune replays on internal scratch
/// devices), so it deliberately keeps the const Device& signature.
[[nodiscard]] AttentionImpl choose_attention_impl(
    const gpusim::Device& dev, const tensor::MatrixF& x,
    const AttentionWeights& w, const AttentionConfig& cfg,
    const AdaptivePolicy& policy = {});

/// Run the operator choose_attention_impl selects. Resilient: if the
/// chosen operator fails with a gpusim::KernelFault or SharedMemOverflow,
/// it walks the degradation chain flash → otf → partial_otf → fused →
/// modular (every implementation computes the same function, so the safe
/// path is always a valid substitute). Each hop is recorded via
/// Device::note_fallback and surfaces in the profiler report; only a fault
/// in the modular baseline itself propagates.
[[nodiscard]] tensor::MatrixF adaptive_attention(
    ExecContext& ctx, const tensor::MatrixF& x, const AttentionWeights& w,
    const AttentionConfig& cfg, const AdaptivePolicy& policy = {});

}  // namespace et::core
