// core::ExecContext — the execution context every kernel and operator
// takes in place of a raw gpusim::Device&.
//
// It bundles the simulated device with an owned deterministic ThreadPool,
// replacing the old per-call parameter sprawl with one object that can
// grow further execution state (streams, sharding) without another API
// break. Its parallel_for is the only sanctioned way to record kernel
// launches from multiple threads: each fixed chunk stages its launches,
// fallback events and slot attribution in a gpusim::LaunchSink, and the
// sinks are merged into the device in chunk order — so the launch log,
// profiler totals and per-slot attribution of a threads=N run are
// bit-identical to threads=1.
//
// Determinism contract (docs/threading.md):
//   - the chunk partition depends only on (n, grain), never thread count;
//   - numerics are untouched: each output element is computed by exactly
//     one iteration running the same serial inner loops;
//   - with the device's FaultInjector armed, parallel_for degrades to the
//     exact serial loop, so injected faults fire at the same logical
//     launch index at any thread count (fault rehearsal is a testing
//     facility; it never needs the wall-clock win);
//   - nested parallel_for (an operator already running inside a chunk)
//     executes serially inline.
#pragma once

#include <cstddef>
#include <exception>
#include <utility>
#include <vector>

#include "core/thread_pool.hpp"
#include "gpusim/device.hpp"

namespace et::core {

class ExecContext {
 public:
  /// `threads` sizes the owned pool (1 = fully serial, the drop-in
  /// equivalent of the old Device&-only API). The device is borrowed and
  /// must outlive the context.
  explicit ExecContext(gpusim::Device& dev, std::size_t threads = 1)
      : dev_(dev), pool_(threads) {}

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  [[nodiscard]] gpusim::Device& device() noexcept { return dev_; }
  [[nodiscard]] const gpusim::Device& device() const noexcept { return dev_; }
  [[nodiscard]] ThreadPool& pool() noexcept { return pool_; }
  [[nodiscard]] std::size_t threads() const noexcept {
    return pool_.threads();
  }

  /// Deterministic parallel loop over [0, n) whose body MAY record
  /// launches on device(). Chunks run with per-chunk LaunchSinks; sinks
  /// merge in chunk order. If an iteration throws, sinks up to and
  /// including the throwing chunk are merged (matching what a serial run
  /// would have logged), later chunks' records are discarded, and the
  /// lowest-chunk exception is rethrown — bodies that mutate non-device
  /// state across iterations must catch internally or roll back, since
  /// chunks after the throwing one still execute.
  ///
  /// Pure math loops that never touch the device can use pool() directly
  /// and skip the sink machinery (they may then also run parallel while
  /// the fault injector is armed).
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn, std::size_t grain = 0) {
    if (n == 0) return;
    const std::size_t g = grain != 0 ? grain : ThreadPool::grain_for(n);
    const std::size_t chunks = ThreadPool::chunk_count(n, g);
    if (threads() <= 1 || chunks <= 1 || ThreadPool::in_parallel_region() ||
        dev_.fault_injector().armed()) {
      // Exact serial loop: launches record directly, faults fire at their
      // serial launch indices, a thrown exception stops the loop.
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    std::vector<gpusim::LaunchSink> sinks(chunks);
    const auto errors = pool_.run_chunked(
        n, g, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          gpusim::SinkScope scope(dev_, sinks[chunk]);
          for (std::size_t i = begin; i < end; ++i) fn(i);
        });
    const std::size_t merge_through =
        errors.empty() ? chunks - 1 : errors.front().chunk;
    for (std::size_t c = 0; c <= merge_through; ++c) {
      dev_.merge(std::move(sinks[c]));
    }
    if (!errors.empty()) std::rethrow_exception(errors.front().error);
  }

 private:
  gpusim::Device& dev_;
  ThreadPool pool_;
};

}  // namespace et::core
