// Incremental (autoregressive) attention with a KV cache — the inference
// regime of the decoder-only models the paper cites (GPT-3 is "12 layers
// of decoders", §2.1). Each generated token projects one new K/V row,
// appends it to the cache, and attends over everything so far: the
// on-the-fly operator degenerates to a single-row instance whose score
// row still lives entirely in shared memory.
#pragma once

#include "core/config.hpp"
#include "core/exec_context.hpp"
#include "core/weights.hpp"
#include "gpusim/device.hpp"
#include "tensor/matrix.hpp"

namespace et::core {

/// Per-layer key/value cache with fixed capacity. Rows are appended as
/// tokens are generated; `used()` is the current context length.
///
/// The two planes have independent row widths: K always stores the
/// full-width key row, while the V plane stores whatever representation
/// the layer's weight layout produces — a full d_model row (dense), the
/// condensed Σkept-wide v of a condensable row-pruned W_V (§4.3), or the
/// H·kept-wide m = x·W_VOᵀ row of the pre-computed fold (§3.1). A
/// condensed V plane is what makes the folded layout cheaper per token,
/// not just per kernel: every later step re-reads the whole plane.
class KVCache {
 public:
  KVCache() = default;
  KVCache(std::size_t capacity, std::size_t d_model)
      : KVCache(capacity, d_model, d_model) {}
  KVCache(std::size_t capacity, std::size_t k_width, std::size_t v_width)
      : k_(capacity, k_width), v_(capacity, v_width) {}

  [[nodiscard]] std::size_t capacity() const noexcept { return k_.rows(); }
  [[nodiscard]] std::size_t used() const noexcept { return used_; }
  [[nodiscard]] bool full() const noexcept { return used_ == capacity(); }
  [[nodiscard]] std::size_t k_width() const noexcept { return k_.cols(); }
  [[nodiscard]] std::size_t v_width() const noexcept { return v_.cols(); }

  /// Bytes of K/V storage held by this cache (both planes, full
  /// capacity — the storage is allocated up front, not per row). With a
  /// condensed V plane this is strictly less than 2·capacity·d_model·4.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return k_.rows() * (k_.cols() + v_.cols()) * sizeof(float);
  }

  /// Bytes of the filled prefix only (`used()` rows of both planes) —
  /// the live-context share of memory_bytes().
  [[nodiscard]] std::size_t used_bytes() const noexcept {
    return used_ * (k_.cols() + v_.cols()) * sizeof(float);
  }

  /// Append one projected row to each of K and V. Throws std::length_error
  /// when the cache is full and std::invalid_argument on a row-width
  /// mismatch. Strong guarantee: every check runs before either plane is
  /// written, so a failed append leaves K and V untouched and consistent.
  void append(std::span<const float> k_row, std::span<const float> v_row);

  /// Contiguous views of the filled prefix (used × d_model copies).
  [[nodiscard]] tensor::MatrixF k_prefix() const;
  [[nodiscard]] tensor::MatrixF v_prefix() const;

  void reset() noexcept { used_ = 0; }

  /// Roll the cache back to `n` used rows (no-op when n >= used()). Lets
  /// a caller undo appends from a step that failed partway, keeping the
  /// step atomic — see GenerationSession::step.
  void truncate(std::size_t n) noexcept {
    if (n < used_) used_ = n;
  }

 private:
  tensor::MatrixF k_;
  tensor::MatrixF v_;
  std::size_t used_ = 0;
};

/// Fixed pool of per-slot, per-layer KV caches for batched serving. All
/// storage is allocated once up front (`num_slots` slots × `num_layers`
/// caches of `capacity` rows each) and recycled across sequences: acquire
/// resets a slot's caches, it never reallocates — admission cost under
/// heavy traffic is O(1), not O(context·d_model).
class KVCachePool {
 public:
  KVCachePool(std::size_t num_slots, std::size_t num_layers,
              std::size_t capacity, std::size_t d_model);

  /// Per-layer V-plane widths (index = layer): the layout-aware form the
  /// serving path uses so a folded or condensed layer allocates only its
  /// condensed width. K rows are always `k_width` wide.
  KVCachePool(std::size_t num_slots, std::size_t capacity,
              std::size_t k_width, const std::vector<std::size_t>& v_widths);

  [[nodiscard]] std::size_t num_slots() const noexcept {
    return slots_.size();
  }
  [[nodiscard]] std::size_t free_slots() const noexcept {
    return free_.size();
  }
  [[nodiscard]] bool has_free() const noexcept { return !free_.empty(); }

  /// Total bytes of KV storage the pool pre-allocated across every slot
  /// and layer — the serving runtime's kv_bytes capacity gauge.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    std::size_t total = 0;
    for (const Slot& s : slots_) {
      for (const KVCache& c : s.caches) total += c.memory_bytes();
    }
    return total;
  }

  /// Bytes of KV storage currently holding live context: the filled rows
  /// of every acquired slot's caches (a released slot contributes zero
  /// even before its next reset). This is the serving runtime's
  /// kv_bytes_used gauge, and the chaos harness's drain invariant — it
  /// must return to zero once every request has retired.
  [[nodiscard]] std::size_t used_bytes() const noexcept {
    std::size_t total = 0;
    for (const Slot& s : slots_) {
      if (!s.in_use) continue;
      for (const KVCache& c : s.caches) total += c.used_bytes();
    }
    return total;
  }

  /// Claim a free slot; its caches come back reset. Throws
  /// std::runtime_error when every slot is in use (callers gate on
  /// has_free()).
  [[nodiscard]] std::size_t acquire();

  /// Return a slot to the pool. Throws std::invalid_argument on an
  /// out-of-range id or a double release.
  void release(std::size_t slot);

  /// The per-layer caches of an acquired slot (index = layer).
  [[nodiscard]] std::vector<KVCache>& caches(std::size_t slot) {
    return slots_.at(slot).caches;
  }
  [[nodiscard]] const std::vector<KVCache>& caches(std::size_t slot) const {
    return slots_.at(slot).caches;
  }

 private:
  struct Slot {
    std::vector<KVCache> caches;
    bool in_use = false;
  };
  std::vector<Slot> slots_;
  std::vector<std::size_t> free_;  // LIFO keeps recently-hot slots warm
};

/// One autoregressive attention step: `x_row` is the current token's
/// hidden state (1 × d_model). Projects q/k for the new token, projects
/// the V-side operand in whatever layout `w` deploys — a full-width v
/// row, the condensed v of a condensable row-pruned W_V (§4.3), or the
/// m = x·W_VOᵀ row of the pre-computed fold (§3.1, in which case w.wo is
/// already folded in and is NOT applied) — appends to the cache, and
/// returns the attention output (1 × d_model) attending over the whole
/// cache. The cache's V plane must have been sized for the layout
/// (nn::Model::v_width); a mismatch fails the append before either plane
/// is written.
[[nodiscard]] tensor::MatrixF incremental_attention(ExecContext& ctx,
                                                    const tensor::MatrixF& x_row,
                                                    const AttentionWeights& w,
                                                    const AttentionConfig& cfg,
                                                    KVCache& cache);

/// The post-projection half of incremental_attention: append the already
/// projected (q, k_new, v_new) rows and run the 1-row OTF attention step
/// over the cache — the same "incremental_otf_attention" launch
/// accounting and detail::attention_math call. Returns z (1 × d_model):
/// the attention output BEFORE W_O when `vo` is null (the caller applies
/// its own output projection — this split is what lets the INT8 decode
/// path swap every projection GEMM while keeping the attention step
/// byte-for-byte shared), or the final folded output when `vo` is set.
[[nodiscard]] tensor::MatrixF incremental_attention_step(
    ExecContext& ctx, const tensor::MatrixF& q, const tensor::MatrixF& k_new,
    const tensor::MatrixF& v_new, const PrecomputedVO* vo,
    const std::vector<std::uint32_t>* v_kept, const AttentionConfig& cfg,
    KVCache& cache);

}  // namespace et::core
