// Self-attention weights in any mix of pruned formats, plus the
// pre-computed linear transformation of §3.1 / Eq. 5.
//
// All four matrices are (d_model × d_model) in (out × in) orientation.
// Head h of W_Q/W_K/W_V is its row block [h·d_k, (h+1)·d_k); head h of
// W_O is its *column* block (because W_O consumes the concatenated Z).
//
// Pre-computation folds W_V and W_O into
//     W_VO = ‖_h ( W_V,hᵀ · W_O,hᵀ )          (d_model × H·d_model)
// evaluated before inference. When W_O is row-pruned the same output
// columns vanish from every head block, so W_VO condenses to
// (d_model × H·kept) — stored here transposed as (H·kept × d_model) so the
// standard X·Wᵀ kernel applies. §4.3 pairs this with a dense W_V.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "sparse/formats.hpp"
#include "tensor/matrix.hpp"

namespace et::core {

struct PrecomputedVO {
  /// (H·kept) × d_model, head-major: rows [h·kept, (h+1)·kept) hold head
  /// h's condensed W_VO block.
  tensor::MatrixF weight;
  /// For each condensed column, its original output index in [0, d_model).
  /// Identical for every head (they share the output dimension).
  std::vector<std::uint32_t> kept_cols;
  std::size_t num_heads = 0;

  [[nodiscard]] bool empty() const noexcept { return weight.empty(); }
  [[nodiscard]] std::size_t kept() const noexcept { return kept_cols.size(); }
};

struct AttentionWeights {
  sparse::AnyWeight wq;
  sparse::AnyWeight wk;
  sparse::AnyWeight wv;
  sparse::AnyWeight wo;
  /// Non-empty when the pre-computed linear transformation is in use; the
  /// attention operators then ignore wv/wo at inference time.
  PrecomputedVO vo;

  [[nodiscard]] bool has_precomputed() const noexcept { return !vo.empty(); }

  /// True when wv is row-pruned with the same number of kept rows in every
  /// head block — the attention-aware layout (§4.3 / Table 1) that lets
  /// E.T.'s operators consume the *condensed* V (fewer S·V columns)
  /// instead of a zero-padded one. Baselines always scatter back to full
  /// width, which is the [21] limitation the paper calls out in §6.
  [[nodiscard]] bool v_condensable(std::size_t num_heads) const;
};

/// Build dense attention weights with deterministic random values scaled
/// like trained transformer weights.
[[nodiscard]] AttentionWeights make_dense_weights(const AttentionConfig& cfg,
                                                  std::uint64_t seed);

/// Compute W_VO (Eq. 5) on the host from dense W_V and W_O with an
/// optional set of kept W_O rows (row pruning). `kept_rows` empty means
/// all rows kept. This is a pre-inference step, so no device kernels are
/// recorded — exactly like the paper, which computes it "beforehand".
[[nodiscard]] PrecomputedVO precompute_vo(const tensor::MatrixF& wv,
                                          const tensor::MatrixF& wo,
                                          std::size_t num_heads,
                                          std::vector<std::uint32_t> kept_rows = {});

}  // namespace et::core
