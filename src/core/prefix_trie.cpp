#include "core/prefix_trie.hpp"

#include <algorithm>
#include <stdexcept>

namespace et::core {

PrefixTrie::PrefixTrie(std::size_t block_tokens)
    : block_tokens_(block_tokens) {
  if (block_tokens == 0) {
    throw std::invalid_argument("PrefixTrie: block_tokens must be nonzero");
  }
}

std::map<std::size_t, PrefixTrie::Node>::const_iterator
PrefixTrie::find_child(std::size_t parent, std::uint64_t group,
                       std::span<const std::int32_t> chunk) const {
  for (auto it = nodes_.begin(); it != nodes_.end(); ++it) {
    const Node& n = it->second;
    if (n.parent != parent) continue;
    if (parent == kRoot && n.group != group) continue;
    if (n.tokens.size() != chunk.size()) continue;
    if (std::equal(n.tokens.begin(), n.tokens.end(), chunk.begin())) {
      return it;
    }
  }
  return nodes_.end();
}

bool PrefixTrie::has_partial_child(std::size_t parent,
                                   std::uint64_t group) const {
  for (const auto& [id, n] : nodes_) {
    if (n.parent == parent && n.partial &&
        (parent != kRoot || n.group == group)) {
      return true;
    }
  }
  return false;
}

PrefixTrie::Match PrefixTrie::lookup(std::uint64_t group,
                                     std::span<const std::int32_t> prompt,
                                     std::size_t max_tokens) const {
  Match m;
  if (group == kNoPrefixGroup) return m;
  const std::size_t limit = std::min(max_tokens, prompt.size());
  std::size_t parent = kRoot;
  // Full-chunk walk: every matched full node contributes a whole block,
  // except the one a row cap lands inside — taken partially, ending the
  // walk (the consumer's first append there CoW-splits it).
  while (m.tokens + block_tokens_ <= prompt.size()) {
    if (m.tokens >= limit) return m;
    const auto it = find_child(
        parent, group, prompt.subspan(m.tokens, block_tokens_));
    if (it == nodes_.end()) break;
    const std::size_t take = std::min(block_tokens_, limit - m.tokens);
    m.blocks.push_back(it->second.block);
    m.tokens += take;
    if (take < block_tokens_) return m;
    parent = it->first;
  }
  // Partial leaf: share however many of its tokens agree with the
  // remaining prompt (first divergence, prompt end, or the cap).
  for (const auto& [id, n] : nodes_) {
    if (n.parent != parent || !n.partial) continue;
    if (parent == kRoot && n.group != group) continue;
    std::size_t p = 0;
    while (p < n.tokens.size() && m.tokens + p < limit &&
           n.tokens[p] == prompt[m.tokens + p]) {
      ++p;
    }
    if (p > 0) {
      m.blocks.push_back(n.block);
      m.tokens += p;
    }
    break;  // at most one partial leaf per parent
  }
  return m;
}

void PrefixTrie::insert(std::uint64_t group,
                        std::span<const std::int32_t> prompt_prefix,
                        BlockId block) {
  if (group == kNoPrefixGroup || prompt_prefix.empty()) return;
  const std::size_t full = prompt_prefix.size() / block_tokens_;
  const std::size_t tail = prompt_prefix.size() % block_tokens_;
  const std::size_t parents = tail == 0 ? full - 1 : full;
  std::size_t parent = kRoot;
  for (std::size_t i = 0; i < parents; ++i) {
    const auto it = find_child(
        parent, group, prompt_prefix.subspan(i * block_tokens_, block_tokens_));
    if (it == nodes_.end()) return;  // parent chain incomplete — skip
    parent = it->first;
  }
  const auto chunk = prompt_prefix.subspan(parents * block_tokens_);
  if (tail == 0) {
    if (find_child(parent, group, chunk) != nodes_.end()) return;  // first wins
  } else if (has_partial_child(parent, group)) {
    return;  // one partial leaf per parent, first wins
  }
  Node n;
  n.group = group;
  n.parent = parent;
  n.tokens.assign(chunk.begin(), chunk.end());
  n.block = block;
  n.partial = tail != 0;
  nodes_.emplace(next_id_++, std::move(n));
}

void PrefixTrie::erase_subtree(std::size_t id) {
  std::vector<std::size_t> doomed{id};
  for (std::size_t i = 0; i < doomed.size(); ++i) {
    for (const auto& [cid, n] : nodes_) {
      if (n.parent == doomed[i]) doomed.push_back(cid);
    }
  }
  for (const std::size_t d : doomed) nodes_.erase(d);
}

void PrefixTrie::invalidate(BlockId block, std::size_t written_row) {
  for (;;) {
    bool erased = false;
    for (const auto& [id, n] : nodes_) {
      if (n.block == block && n.tokens.size() > written_row) {
        erase_subtree(id);
        erased = true;
        break;  // iterators invalidated — rescan
      }
    }
    if (!erased) return;
  }
}

}  // namespace et::core
