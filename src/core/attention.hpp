// The self-attention implementations the paper compares, plus the
// IO-aware streaming operator from FlashAttention-1/2.
//
//   modular_attention      — "PyTorch-like": one kernel per operator, FP32
//                            general-core math, dense weights; every
//                            intermediate round-trips global memory.
//   fused_attention        — "TensorRT-like": horizontally-fused QKV GEMM,
//                            batched per-head score/context GEMMs, and
//                            vertically-fused pointwise kernels. Fewer
//                            launches, but GEMM outputs (Q·Kᵀ, S) still
//                            live in global memory — the paper's key
//                            observation about why kernel fusion alone is
//                            not enough (§1 issue (ii), §3.1).
//   otf_attention          — E.T.'s on-the-fly operator: steps ②–⑥ of
//                            Fig. 3 execute in ONE kernel; each CTA owns a
//                            16-row tile of one head, keeps the scaled Q
//                            rows and the score row in shared memory, and
//                            never writes Q·Kᵀ or S to global memory. The
//                            price: K and V are re-read once per row tile.
//   partial_otf_attention  — §3.2's long-sequence variant: ②–③ become an
//                            outer-product GEMM kernel (Q and K read once,
//                            S written once), ④–⑥ a second fused kernel.
//   flash_attention        — FlashAttention-2-style streaming operator:
//                            one kernel; each CTA owns a Br-row query tile
//                            of one head (seq-length work partitioning)
//                            and streams K/V in Bc-column blocks through
//                            an online softmax (running max/denominator
//                            with rescaling). Neither Q·Kᵀ nor S ever
//                            touches global memory at ANY seq_len — score
//                            traffic is O(N) (per-row softmax statistics)
//                            instead of partial-OTF's O(N²).
//
// All five compute the same function; tests assert cross-equivalence
// (flash within a bounded error of the others: its blockwise softmax
// reassociates the sums).
// Every operator takes a core::ExecContext: the projections run on its
// device and the row-parallel attention math on its ThreadPool, with
// results bit-identical at any thread count (docs/threading.md).
#pragma once

#include "core/config.hpp"
#include "core/exec_context.hpp"
#include "core/weights.hpp"
#include "gpusim/device.hpp"
#include "tensor/matrix.hpp"

namespace et::core {

[[nodiscard]] tensor::MatrixF modular_attention(ExecContext& ctx,
                                                const tensor::MatrixF& x,
                                                const AttentionWeights& w,
                                                const AttentionConfig& cfg);

/// `aggressive_fusion` = FasterTransformer-style: masking and softmax
/// merged into one kernel (one fewer global round trip of S than the
/// TensorRT step list of Fig. 12).
[[nodiscard]] tensor::MatrixF fused_attention(ExecContext& ctx,
                                              const tensor::MatrixF& x,
                                              const AttentionWeights& w,
                                              const AttentionConfig& cfg,
                                              bool aggressive_fusion = false);

[[nodiscard]] tensor::MatrixF otf_attention(ExecContext& ctx,
                                            const tensor::MatrixF& x,
                                            const AttentionWeights& w,
                                            const AttentionConfig& cfg);

[[nodiscard]] tensor::MatrixF partial_otf_attention(ExecContext& ctx,
                                                    const tensor::MatrixF& x,
                                                    const AttentionWeights& w,
                                                    const AttentionConfig& cfg);

[[nodiscard]] tensor::MatrixF flash_attention(ExecContext& ctx,
                                              const tensor::MatrixF& x,
                                              const AttentionWeights& w,
                                              const AttentionConfig& cfg);

/// Cross-attention with E.T.'s on-the-fly operator: queries come from `x`
/// (cfg.seq_len rows) while keys/values come from an encoder `memory`
/// (any number of rows). This is the decoder-side attention of the
/// original Transformer (§2.1 notes the decoder mirrors the encoder);
/// the causal mask never applies across the memory.
[[nodiscard]] tensor::MatrixF otf_cross_attention(ExecContext& ctx,
                                                  const tensor::MatrixF& x,
                                                  const tensor::MatrixF& memory,
                                                  const AttentionWeights& w,
                                                  const AttentionConfig& cfg);

/// Streaming cross-attention: flash_attention's kernel structure with K/V
/// projected from an encoder `memory`. The win over otf_cross_attention
/// grows with the memory length — exactly the operand the online softmax
/// streams in O(N) — so the decoder dispatches on memory.rows().
[[nodiscard]] tensor::MatrixF flash_cross_attention(
    ExecContext& ctx, const tensor::MatrixF& x, const tensor::MatrixF& memory,
    const AttentionWeights& w, const AttentionConfig& cfg);

/// Shared memory one OTF CTA needs (Eq. 6): a 16-row tile of Q's head
/// slice plus a 16-row tile of the kv_len-wide score matrix, in
/// accumulator precision, plus a staging buffer for K tiles.
/// kv_len == 0 means self-attention: the score row is cfg.seq_len wide.
[[nodiscard]] std::size_t otf_shared_bytes(const AttentionConfig& cfg,
                                           std::size_t kv_len = 0);

/// Shared memory one flash CTA needs: the Br-row Q tile plus the Br×Bc
/// score tile in accumulator precision, plus K/V staging buffers. Unlike
/// Eq. 6 this never depends on the sequence (or memory) length — the
/// whole point of streaming the K/V blocks — so the same `kv_len = 0`
/// signature exists purely for interface symmetry with otf_shared_bytes.
[[nodiscard]] std::size_t flash_shared_bytes(const AttentionConfig& cfg,
                                             std::size_t kv_len = 0);

}  // namespace et::core
