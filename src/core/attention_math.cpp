#include "core/attention_math.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

#include "numeric/precision.hpp"

namespace et::core::detail {

namespace {
using numeric::Precision;
}  // namespace

tensor::MatrixF attention_math(const tensor::MatrixF& q,
                               const tensor::MatrixF& k,
                               const tensor::MatrixF& context,
                               const PrecomputedVO* vo,
                               const std::vector<std::uint32_t>* v_kept,
                               const AttentionConfig& cfg, ThreadPool* pool) {
  const std::size_t s = cfg.seq_len;
  // Cross-attention: keys/values may come from a memory of different
  // length; self-attention has kv == s.
  const std::size_t kv = k.rows();
  const std::size_t d = cfg.d_model;
  const std::size_t h_count = cfg.num_heads;
  const std::size_t dk = cfg.d_k();
  const Precision p = cfg.precision;
  const float scale = cfg.scale();

  assert(q.rows() == s && q.cols() == d);
  assert(k.cols() == d);
  assert(context.rows() == kv);
  assert(vo == nullptr || v_kept == nullptr);
  if (vo != nullptr) {
    assert(context.cols() == h_count * vo->kept());
  } else if (v_kept != nullptr) {
    assert(context.cols() == v_kept->size());
    assert(v_kept->size() % h_count == 0);
  } else {
    assert(context.cols() == d);
  }
  const std::size_t v_per_head =
      v_kept != nullptr ? v_kept->size() / h_count : 0;

  tensor::MatrixF out(s, d);

  const auto row_body = [&](std::size_t i) {
    std::vector<float> qrow(dk);
    std::vector<float> scores(kv);
    for (std::size_t h = 0; h < h_count; ++h) {
      // ② the scaling operator. Reordered before the multiply it keeps
      // every partial product within FP16 range (§3.3).
      for (std::size_t c = 0; c < dk; ++c) {
        const float v = q(i, h * dk + c);
        qrow[c] = cfg.scale_before_multiply
                      ? numeric::round_to_storage(p, v * scale)
                      : v;
      }
      // ③ one row of Q·Kᵀ, accumulated under the precision policy.
      for (std::size_t j = 0; j < kv; ++j) {
        float acc = 0.0f;
        if (p == Precision::kFp32) {
          for (std::size_t c = 0; c < dk; ++c) {
            acc += qrow[c] * k(j, h * dk + c);
          }
        } else {
          for (std::size_t c = 0; c < dk; ++c) {
            acc = numeric::fma_step(p, qrow[c], k(j, h * dk + c), acc);
          }
          acc = numeric::round_to_storage(p, acc);
        }
        if (!cfg.scale_before_multiply) {
          acc = numeric::round_to_storage(p, acc * scale);
        }
        scores[j] = acc;
      }
      // ④ masking (self-attention only; a causal mask is meaningless when
      // attending over an encoder memory).
      if (cfg.causal_mask && kv == s) {
        for (std::size_t j = i + 1; j < kv; ++j) {
          scores[j] = -std::numeric_limits<float>::infinity();
        }
      }
      // Padding mask: keys past the valid prefix never receive weight.
      if (cfg.valid_len > 0 && cfg.valid_len < kv) {
        for (std::size_t j = cfg.valid_len; j < kv; ++j) {
          scores[j] = -std::numeric_limits<float>::infinity();
        }
      }
      // ⑤ softmax over the row (max-subtracted; ±inf saturations from an
      // FP16 overflow propagate into NaN/garbage exactly as on hardware).
      float mx = -std::numeric_limits<float>::infinity();
      for (std::size_t j = 0; j < kv; ++j) mx = std::max(mx, scores[j]);
      float sum = 0.0f;
      for (std::size_t j = 0; j < kv; ++j) {
        scores[j] = std::exp(scores[j] - mx);
        sum += scores[j];
      }
      const float inv = sum > 0.0f ? 1.0f / sum : 0.0f;
      for (std::size_t j = 0; j < kv; ++j) {
        scores[j] = numeric::round_to_storage(p, scores[j] * inv);
      }
      // ⑥ multiply with the context operand.
      if (v_kept != nullptr) {
        // Condensed V: only the surviving columns of this head are
        // computed; Z keeps zeros at pruned positions.
        for (std::size_t c = 0; c < v_per_head; ++c) {
          float acc = 0.0f;
          if (p == Precision::kFp32) {
            for (std::size_t j = 0; j < kv; ++j) {
              acc += scores[j] * context(j, h * v_per_head + c);
            }
          } else {
            for (std::size_t j = 0; j < kv; ++j) {
              acc = numeric::fma_step(p, scores[j],
                                      context(j, h * v_per_head + c), acc);
            }
            acc = numeric::round_to_storage(p, acc);
          }
          out(i, (*v_kept)[h * v_per_head + c]) = acc;
        }
      } else if (vo == nullptr) {
        for (std::size_t c = 0; c < dk; ++c) {
          float acc = 0.0f;
          if (p == Precision::kFp32) {
            for (std::size_t j = 0; j < kv; ++j) {
              acc += scores[j] * context(j, h * dk + c);
            }
          } else {
            for (std::size_t j = 0; j < kv; ++j) {
              acc = numeric::fma_step(p, scores[j], context(j, h * dk + c),
                                      acc);
            }
            acc = numeric::round_to_storage(p, acc);
          }
          out(i, h * dk + c) = acc;
        }
      } else {
        const std::size_t kept = vo->kept();
        for (std::size_t c = 0; c < kept; ++c) {
          float acc = 0.0f;
          if (p == Precision::kFp32) {
            for (std::size_t j = 0; j < kv; ++j) {
              acc += scores[j] * context(j, h * kept + c);
            }
          } else {
            for (std::size_t j = 0; j < kv; ++j) {
              acc = numeric::fma_step(p, scores[j], context(j, h * kept + c),
                                      acc);
            }
            acc = numeric::round_to_storage(p, acc);
          }
          // ⑧ heads sum into the shared output columns (Eq. 4/5).
          out(i, vo->kept_cols[c]) += acc;
        }
      }
    }
  };

  if (pool != nullptr) {
    pool->parallel_for(s, row_body);
  } else {
    for (std::size_t i = 0; i < s; ++i) row_body(i);
  }
  return out;
}

tensor::MatrixF flash_attention_math(const tensor::MatrixF& q,
                                     const tensor::MatrixF& k,
                                     const tensor::MatrixF& context,
                                     const PrecomputedVO* vo,
                                     const std::vector<std::uint32_t>* v_kept,
                                     const AttentionConfig& cfg,
                                     ThreadPool* pool) {
  const std::size_t s = cfg.seq_len;
  const std::size_t kv = k.rows();
  const std::size_t d = cfg.d_model;
  const std::size_t h_count = cfg.num_heads;
  const std::size_t dk = cfg.d_k();
  const std::size_t br = cfg.flash_block_rows;
  const std::size_t bc = cfg.flash_block_cols;
  const Precision p = cfg.precision;
  const float scale = cfg.scale();
  constexpr float kInf = std::numeric_limits<float>::infinity();

  assert(q.rows() == s && q.cols() == d);
  assert(k.cols() == d);
  assert(context.rows() == kv);
  assert(vo == nullptr || v_kept == nullptr);
  if (vo != nullptr) {
    assert(context.cols() == h_count * vo->kept());
  } else if (v_kept != nullptr) {
    assert(context.cols() == v_kept->size());
    assert(v_kept->size() % h_count == 0);
  } else {
    assert(context.cols() == d);
  }
  /// Width of one head's slice of the context operand.
  const std::size_t v_cols = vo != nullptr
                                 ? vo->kept()
                                 : (v_kept != nullptr
                                        ? v_kept->size() / h_count
                                        : dk);
  // P·V multiplicands are rounded to the policy's storage type but always
  // accumulate in FP32 (the flash kernel keeps O in FP32 registers while
  // rescaling — see the header); pure FP16 therefore shares kMixed's step.
  const Precision pv = p == Precision::kBf16Mixed ? Precision::kBf16Mixed
                                                  : Precision::kMixed;

  tensor::MatrixF out(s, d);

  const auto tile_body = [&](std::size_t t) {
    std::vector<float> qrow(dk);
    std::vector<float> block(bc);
    std::vector<float> acc(v_cols);
    const std::size_t i_end = std::min(s, (t + 1) * br);
    for (std::size_t i = t * br; i < i_end; ++i) {
      for (std::size_t h = 0; h < h_count; ++h) {
        // ② the scaling operator, reordered exactly as attention_math.
        for (std::size_t c = 0; c < dk; ++c) {
          const float v = q(i, h * dk + c);
          qrow[c] = cfg.scale_before_multiply
                        ? numeric::round_to_storage(p, v * scale)
                        : v;
        }
        // Fully-masked keys contribute exp(-inf) = 0, so the streaming
        // loop stops at the causal diagonal / valid prefix — the block
        // skip a flash kernel performs. At least one key always remains
        // (the diagonal itself).
        std::size_t kv_end = kv;
        if (cfg.causal_mask && kv == s) kv_end = std::min(kv_end, i + 1);
        if (cfg.valid_len > 0 && cfg.valid_len < kv) {
          kv_end = std::min(kv_end, cfg.valid_len);
        }

        float m = -kInf;   // running row max
        float l = 0.0f;    // running softmax denominator
        std::fill(acc.begin(), acc.end(), 0.0f);
        for (std::size_t b0 = 0; b0 < kv_end; b0 += bc) {
          const std::size_t b1 = std::min(kv_end, b0 + bc);
          // ③ one Bc-wide block of the score row, under the same
          // precision policy (and §3.3 overflow behavior) as every other
          // operator.
          float bm = -kInf;
          for (std::size_t j = b0; j < b1; ++j) {
            float sc = 0.0f;
            if (p == Precision::kFp32) {
              for (std::size_t c = 0; c < dk; ++c) {
                sc += qrow[c] * k(j, h * dk + c);
              }
            } else {
              for (std::size_t c = 0; c < dk; ++c) {
                sc = numeric::fma_step(p, qrow[c], k(j, h * dk + c), sc);
              }
              sc = numeric::round_to_storage(p, sc);
            }
            if (!cfg.scale_before_multiply) {
              sc = numeric::round_to_storage(p, sc * scale);
            }
            block[j - b0] = sc;
            bm = std::max(bm, sc);
          }
          // ④–⑤ online softmax update: rescale the running denominator
          // and output by exp(m − m_new), then fold the block in. An
          // FP16-saturated −inf block with no prior mass contributes
          // nothing; a +inf overflow poisons ℓ and the accumulator with
          // NaN exactly as the one-shot softmax would.
          const float m_new = std::max(m, bm);
          if (m_new == -kInf) continue;
          const float corr = m == -kInf ? 0.0f : std::exp(m - m_new);
          l *= corr;
          for (std::size_t c = 0; c < v_cols; ++c) acc[c] *= corr;
          for (std::size_t j = b0; j < b1; ++j) {
            const float pj = std::exp(block[j - b0] - m_new);
            l += pj;
            // ⑥ fold the block's slice of the context operand in.
            const std::size_t base = h * v_cols;
            if (p == Precision::kFp32) {
              for (std::size_t c = 0; c < v_cols; ++c) {
                acc[c] += pj * context(j, base + c);
              }
            } else {
              for (std::size_t c = 0; c < v_cols; ++c) {
                acc[c] = numeric::fma_step(pv, pj, context(j, base + c),
                                           acc[c]);
              }
            }
          }
          m = m_new;
        }
        // Deferred 1/ℓ normalization: one rounding to storage at the end.
        const float inv = l > 0.0f ? 1.0f / l : 0.0f;
        if (v_kept != nullptr) {
          for (std::size_t c = 0; c < v_cols; ++c) {
            out(i, (*v_kept)[h * v_cols + c]) =
                numeric::round_to_storage(p, acc[c] * inv);
          }
        } else if (vo != nullptr) {
          // ⑧ heads sum into the shared output columns (Eq. 4/5).
          for (std::size_t c = 0; c < v_cols; ++c) {
            out(i, vo->kept_cols[c]) +=
                numeric::round_to_storage(p, acc[c] * inv);
          }
        } else {
          for (std::size_t c = 0; c < v_cols; ++c) {
            out(i, h * dk + c) = numeric::round_to_storage(p, acc[c] * inv);
          }
        }
      }
    }
  };

  const std::size_t tiles = (s + br - 1) / br;
  if (pool != nullptr) {
    pool->parallel_for(tiles, tile_body);
  } else {
    for (std::size_t t = 0; t < tiles; ++t) tile_body(t);
  }
  return out;
}

}  // namespace et::core::detail
