#include "core/thread_pool.hpp"

#include <algorithm>

namespace et::core {

namespace {
/// Set while this thread executes a chunk body; the nested-parallelism
/// guard and Device sink routing both key off it being per-thread.
thread_local bool tl_in_parallel_region = false;
}  // namespace

bool ThreadPool::in_parallel_region() noexcept {
  return tl_in_parallel_region;
}

std::size_t ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(std::max<std::size_t>(1, threads)) {
  workers_.reserve(threads_ - 1);
  for (std::size_t i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::work_on(Job& job) {
  const bool prev = tl_in_parallel_region;
  tl_in_parallel_region = true;
  for (;;) {
    const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.chunks) break;
    const std::size_t begin = c * job.grain;
    const std::size_t end = std::min(job.n, begin + job.grain);
    try {
      (*job.fn)(c, begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.err_mutex);
      job.errors.push_back({c, std::current_exception()});
    }
    job.done.fetch_add(1, std::memory_order_release);
  }
  tl_in_parallel_region = prev;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_cv_.wait(lock, [&] {
      return stop_ || (job_ != nullptr && epoch_ != seen_epoch);
    });
    if (stop_) return;
    seen_epoch = epoch_;
    Job* job = job_;
    ++busy_workers_;
    lock.unlock();
    work_on(*job);
    lock.lock();
    --busy_workers_;
    done_cv_.notify_one();
  }
}

std::vector<ThreadPool::ChunkError> ThreadPool::run_chunked(
    std::size_t n, std::size_t grain, const ChunkFn& fn) {
  std::vector<ChunkError> errors;
  if (n == 0) return errors;
  const std::size_t g = std::max<std::size_t>(1, grain);
  const std::size_t chunks = chunk_count(n, g);

  // Serial inline path: no workers, a single chunk, or a nested call from
  // inside a chunk body. Chunk order and per-chunk error capture are the
  // same as the parallel path, so behaviour stays thread-count-invariant.
  if (workers_.empty() || chunks <= 1 || tl_in_parallel_region) {
    const bool prev = tl_in_parallel_region;
    tl_in_parallel_region = true;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * g;
      const std::size_t end = std::min(n, begin + g);
      try {
        fn(c, begin, end);
      } catch (...) {
        errors.push_back({c, std::current_exception()});
      }
    }
    tl_in_parallel_region = prev;
    return errors;
  }

  Job job;
  job.fn = &fn;
  job.n = n;
  job.grain = g;
  job.chunks = chunks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++epoch_;
  }
  wake_cv_.notify_all();
  work_on(job);  // the submitting thread pulls chunks too
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return busy_workers_ == 0 &&
             job.done.load(std::memory_order_acquire) == job.chunks;
    });
    job_ = nullptr;
  }

  std::sort(job.errors.begin(), job.errors.end(),
            [](const ChunkError& a, const ChunkError& b) {
              return a.chunk < b.chunk;
            });
  return job.errors;
}

void ThreadPool::for_chunks(std::size_t n, std::size_t grain,
                            const ChunkFn& fn) {
  const auto errors = run_chunked(n, grain, fn);
  if (!errors.empty()) std::rethrow_exception(errors.front().error);
}

}  // namespace et::core
