#include "core/weights.hpp"

#include <cassert>
#include <numeric>

#include "tensor/random.hpp"

namespace et::core {

AttentionWeights make_dense_weights(const AttentionConfig& cfg,
                                    std::uint64_t seed) {
  const std::size_t d = cfg.d_model;
  tensor::MatrixF wq(d, d), wk(d, d), wv(d, d), wo(d, d);
  // Trained transformer weights are roughly N(0, 1/sqrt(d)); using that
  // scale keeps Q·Kᵀ magnitudes realistic, which matters for the FP16
  // overflow study (Fig. 4).
  tensor::fill_normal(wq, seed + 1, 0.0f,
                      1.0f / std::sqrt(static_cast<float>(d)));
  tensor::fill_normal(wk, seed + 2, 0.0f,
                      1.0f / std::sqrt(static_cast<float>(d)));
  tensor::fill_normal(wv, seed + 3, 0.0f,
                      1.0f / std::sqrt(static_cast<float>(d)));
  tensor::fill_normal(wo, seed + 4, 0.0f,
                      1.0f / std::sqrt(static_cast<float>(d)));

  AttentionWeights w;
  w.wq = sparse::DenseWeight(std::move(wq));
  w.wk = sparse::DenseWeight(std::move(wk));
  w.wv = sparse::DenseWeight(std::move(wv));
  w.wo = sparse::DenseWeight(std::move(wo));
  return w;
}

bool AttentionWeights::v_condensable(std::size_t num_heads) const {
  const auto* row = std::get_if<sparse::RowPrunedWeight>(&wv);
  if (row == nullptr) return false;
  const std::size_t d = row->original_rows();
  if (num_heads == 0 || d % num_heads != 0) return false;
  const std::size_t dk = d / num_heads;
  const auto& kept = row->kept_rows();
  if (kept.empty() || kept.size() % num_heads != 0) return false;
  const std::size_t per_head = kept.size() / num_heads;
  // kept_rows is sorted; verify each head block holds exactly per_head rows.
  for (std::size_t h = 0; h < num_heads; ++h) {
    for (std::size_t i = 0; i < per_head; ++i) {
      const std::uint32_t r = kept[h * per_head + i];
      if (r < h * dk || r >= (h + 1) * dk) return false;
    }
  }
  return true;
}

PrecomputedVO precompute_vo(const tensor::MatrixF& wv,
                            const tensor::MatrixF& wo, std::size_t num_heads,
                            std::vector<std::uint32_t> kept_rows) {
  assert(wv.rows() == wv.cols() && wo.rows() == wo.cols());
  assert(wv.rows() == wo.rows());
  const std::size_t d = wv.rows();
  const std::size_t dk = d / num_heads;

  if (kept_rows.empty()) {
    kept_rows.resize(d);
    std::iota(kept_rows.begin(), kept_rows.end(), 0u);
  }
  const std::size_t kept = kept_rows.size();

  PrecomputedVO out;
  out.num_heads = num_heads;
  out.kept_cols = std::move(kept_rows);
  // Row r of head h's block holds (W_V,hᵀ · W_O,hᵀ) column kept_cols[r],
  // transposed into (out × in) orientation:
  //   weight(h·kept + r, i) = Σ_k W_V(h·dk + k, i) · W_O(kept_cols[r], h·dk + k)
  // where k ranges over the head's d_k features. (W_V,h is the row block
  // of W_V; W_O,h is the column block of W_O.)
  out.weight = tensor::MatrixF(num_heads * kept, d);
  for (std::size_t h = 0; h < num_heads; ++h) {
    for (std::size_t r = 0; r < kept; ++r) {
      const std::size_t orow = out.kept_cols[r];
      for (std::size_t i = 0; i < d; ++i) {
        double acc = 0.0;
        for (std::size_t k = 0; k < dk; ++k) {
          acc += static_cast<double>(wv(h * dk + k, i)) *
                 static_cast<double>(wo(orow, h * dk + k));
        }
        out.weight(h * kept + r, i) = static_cast<float>(acc);
      }
    }
  }
  return out;
}

}  // namespace et::core
