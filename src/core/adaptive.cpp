#include "core/adaptive.hpp"

namespace et::core {

AttentionImpl choose_attention_impl(const gpusim::Device& dev,
                                    const tensor::MatrixF& x,
                                    const AttentionWeights& w,
                                    const AttentionConfig& cfg,
                                    const AdaptivePolicy& policy) {
  cfg.validate();
  // A forced operator is a contract, not a heuristic: start there (the
  // degradation chain still applies if it fails at launch time).
  if (policy.forced) return *policy.forced;
  const bool flash_fits = dev.fits_shared(flash_shared_bytes(cfg));
  const bool otf_fits = dev.fits_shared(otf_shared_bytes(cfg));
  if (!policy.auto_tune) {
    if (flash_fits && cfg.seq_len > policy.flash_min_seq) {
      return AttentionImpl::kFlash;
    }
    // Flash out of the picture (short sequence, or a tile too big for the
    // scratchpad): the paper's original §3.2 decision between the OTF
    // variants, with the Eq. 6 capacity constraint checked first.
    if (!otf_fits) return AttentionImpl::kPartialOtf;
    return cfg.seq_len > policy.partial_otf_min_seq
               ? AttentionImpl::kPartialOtf
               : AttentionImpl::kOtf;
  }
  // Replay each feasible variant against the latency model only (no math,
  // so a serial scratch context is all that's needed) and keep the lowest
  // modeled time; ties go to the earlier candidate.
  const auto replay = [&](AttentionImpl impl) {
    gpusim::Device scratch(dev.spec());
    scratch.set_traffic_only(true);
    ExecContext scratch_ctx(scratch);
    switch (impl) {
      case AttentionImpl::kFlash:
        (void)flash_attention(scratch_ctx, x, w, cfg);
        break;
      case AttentionImpl::kOtf:
        (void)otf_attention(scratch_ctx, x, w, cfg);
        break;
      default:
        (void)partial_otf_attention(scratch_ctx, x, w, cfg);
        break;
    }
    return scratch.total_time_us();
  };
  AttentionImpl best = AttentionImpl::kPartialOtf;  // always feasible
  double best_us = replay(best);
  if (otf_fits) {
    const double t = replay(AttentionImpl::kOtf);
    if (t <= best_us) {
      best = AttentionImpl::kOtf;
      best_us = t;
    }
  }
  if (flash_fits) {
    const double t = replay(AttentionImpl::kFlash);
    if (t <= best_us) {
      best = AttentionImpl::kFlash;
      best_us = t;
    }
  }
  return best;
}

namespace {

tensor::MatrixF run_impl(AttentionImpl impl, ExecContext& ctx,
                         const tensor::MatrixF& x, const AttentionWeights& w,
                         const AttentionConfig& cfg) {
  switch (impl) {
    case AttentionImpl::kFlash:
      return flash_attention(ctx, x, w, cfg);
    case AttentionImpl::kOtf:
      return otf_attention(ctx, x, w, cfg);
    case AttentionImpl::kPartialOtf:
      return partial_otf_attention(ctx, x, w, cfg);
    case AttentionImpl::kFused:
      return fused_attention(ctx, x, w, cfg);
    case AttentionImpl::kModular:
      break;
  }
  return modular_attention(ctx, x, w, cfg);
}

}  // namespace

tensor::MatrixF adaptive_attention(ExecContext& ctx, const tensor::MatrixF& x,
                                   const AttentionWeights& w,
                                   const AttentionConfig& cfg,
                                   const AdaptivePolicy& policy) {
  gpusim::Device& dev = ctx.device();
  cfg.validate();
  // All five implementations compute the same function (the tests assert
  // cross-equivalence), so any faster operator that fails mid-flight can
  // be substituted by the next slower one without changing the answer —
  // the exact-fallback guarantee. Walk the chain from the chosen operator
  // toward kModular, the always-safe baseline; each hop is reported to
  // the device so degradation is observable, not silent. Launches already
  // recorded by a failed attempt stay in the log: that is real (wasted)
  // work the profiler should charge for.
  static constexpr AttentionImpl kChain[] = {
      AttentionImpl::kFlash, AttentionImpl::kOtf, AttentionImpl::kPartialOtf,
      AttentionImpl::kFused, AttentionImpl::kModular};
  constexpr std::size_t kChainLen = std::size(kChain);

  const AttentionImpl first = choose_attention_impl(dev, x, w, cfg, policy);
  std::size_t start = 0;
  while (kChain[start] != first) ++start;

  for (std::size_t i = start;; ++i) {
    try {
      return run_impl(kChain[i], ctx, x, w, cfg);
    } catch (const gpusim::KernelFault& f) {
      if (i + 1 >= kChainLen) throw;  // nothing safer than modular
      dev.note_fallback({std::string(to_string(kChain[i])),
                         std::string(to_string(kChain[i + 1])), f.kernel(),
                         std::string(to_string(f.cause()))});
    } catch (const gpusim::SharedMemOverflow& o) {
      if (i + 1 >= kChainLen) throw;
      dev.note_fallback({std::string(to_string(kChain[i])),
                         std::string(to_string(kChain[i + 1])), o.kernel(),
                         "shared_mem_overflow"});
    }
  }
}

bool use_batched_decode(const AdaptivePolicy& policy,
                        std::size_t active_slots) noexcept {
  return active_slots >= policy.batched_decode_min_slots;
}

}  // namespace et::core
