#include "core/adaptive.hpp"

namespace et::core {

AttentionImpl choose_attention_impl(const gpusim::Device& dev,
                                    const tensor::MatrixF& x,
                                    const AttentionWeights& w,
                                    const AttentionConfig& cfg,
                                    const AdaptivePolicy& policy) {
  cfg.validate();
  // Hard constraint first: the full OTF kernel must fit Eq. 6 in shared
  // memory.
  if (!dev.fits_shared(otf_shared_bytes(cfg))) {
    return AttentionImpl::kPartialOtf;
  }
  if (!policy.auto_tune) {
    return cfg.seq_len > policy.partial_otf_min_seq
               ? AttentionImpl::kPartialOtf
               : AttentionImpl::kOtf;
  }
  // Replay both variants against the latency model only (no math, so a
  // serial scratch context is all that's needed).
  const auto replay = [&](AttentionImpl impl) {
    gpusim::Device scratch(dev.spec());
    scratch.set_traffic_only(true);
    ExecContext scratch_ctx(scratch);
    if (impl == AttentionImpl::kOtf) {
      (void)otf_attention(scratch_ctx, x, w, cfg);
    } else {
      (void)partial_otf_attention(scratch_ctx, x, w, cfg);
    }
    return scratch.total_time_us();
  };
  return replay(AttentionImpl::kOtf) <= replay(AttentionImpl::kPartialOtf)
             ? AttentionImpl::kOtf
             : AttentionImpl::kPartialOtf;
}

namespace {

tensor::MatrixF run_impl(AttentionImpl impl, ExecContext& ctx,
                         const tensor::MatrixF& x, const AttentionWeights& w,
                         const AttentionConfig& cfg) {
  switch (impl) {
    case AttentionImpl::kOtf:
      return otf_attention(ctx, x, w, cfg);
    case AttentionImpl::kPartialOtf:
      return partial_otf_attention(ctx, x, w, cfg);
    case AttentionImpl::kFused:
      return fused_attention(ctx, x, w, cfg);
    case AttentionImpl::kModular:
      break;
  }
  return modular_attention(ctx, x, w, cfg);
}

}  // namespace

tensor::MatrixF adaptive_attention(ExecContext& ctx, const tensor::MatrixF& x,
                                   const AttentionWeights& w,
                                   const AttentionConfig& cfg,
                                   const AdaptivePolicy& policy) {
  gpusim::Device& dev = ctx.device();
  cfg.validate();
  // All four implementations compute the same function (the tests assert
  // cross-equivalence), so any faster operator that fails mid-flight can
  // be substituted by the next slower one without changing the answer —
  // the FlashAttention exact-fallback guarantee. Walk the chain from the
  // chosen operator toward kModular, the always-safe baseline; each hop is
  // reported to the device so degradation is observable, not silent.
  // Launches already recorded by a failed attempt stay in the log: that is
  // real (wasted) work the profiler should charge for.
  static constexpr AttentionImpl kChain[] = {
      AttentionImpl::kOtf, AttentionImpl::kPartialOtf, AttentionImpl::kFused,
      AttentionImpl::kModular};
  constexpr std::size_t kChainLen = std::size(kChain);

  const AttentionImpl first = choose_attention_impl(dev, x, w, cfg, policy);
  std::size_t start = 0;
  while (kChain[start] != first) ++start;

  for (std::size_t i = start;; ++i) {
    try {
      return run_impl(kChain[i], ctx, x, w, cfg);
    } catch (const gpusim::KernelFault& f) {
      if (i + 1 >= kChainLen) throw;  // nothing safer than modular
      dev.note_fallback({std::string(to_string(kChain[i])),
                         std::string(to_string(kChain[i + 1])), f.kernel(),
                         std::string(to_string(f.cause()))});
    } catch (const gpusim::SharedMemOverflow& o) {
      if (i + 1 >= kChainLen) throw;
      dev.note_fallback({std::string(to_string(kChain[i])),
                         std::string(to_string(kChain[i + 1])), o.kernel(),
                         "shared_mem_overflow"});
    }
  }
}

bool use_batched_decode(const AdaptivePolicy& policy,
                        std::size_t active_slots) noexcept {
  return active_slots >= policy.batched_decode_min_slots;
}

}  // namespace et::core
