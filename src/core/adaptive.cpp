#include "core/adaptive.hpp"

namespace et::core {

AttentionImpl choose_attention_impl(const gpusim::Device& dev,
                                    const tensor::MatrixF& x,
                                    const AttentionWeights& w,
                                    const AttentionConfig& cfg,
                                    const AdaptivePolicy& policy) {
  // Hard constraint first: the full OTF kernel must fit Eq. 6 in shared
  // memory.
  if (!dev.fits_shared(otf_shared_bytes(cfg))) {
    return AttentionImpl::kPartialOtf;
  }
  if (!policy.auto_tune) {
    return cfg.seq_len > policy.partial_otf_min_seq
               ? AttentionImpl::kPartialOtf
               : AttentionImpl::kOtf;
  }
  // Replay both variants against the latency model only (no math).
  const auto replay = [&](AttentionImpl impl) {
    gpusim::Device scratch(dev.spec());
    scratch.set_traffic_only(true);
    if (impl == AttentionImpl::kOtf) {
      (void)otf_attention(scratch, x, w, cfg);
    } else {
      (void)partial_otf_attention(scratch, x, w, cfg);
    }
    return scratch.total_time_us();
  };
  return replay(AttentionImpl::kOtf) <= replay(AttentionImpl::kPartialOtf)
             ? AttentionImpl::kOtf
             : AttentionImpl::kPartialOtf;
}

tensor::MatrixF adaptive_attention(gpusim::Device& dev,
                                   const tensor::MatrixF& x,
                                   const AttentionWeights& w,
                                   const AttentionConfig& cfg,
                                   const AdaptivePolicy& policy) {
  switch (choose_attention_impl(dev, x, w, cfg, policy)) {
    case AttentionImpl::kOtf:
      return otf_attention(dev, x, w, cfg);
    case AttentionImpl::kPartialOtf:
      return partial_otf_attention(dev, x, w, cfg);
    case AttentionImpl::kFused:
      return fused_attention(dev, x, w, cfg);
    case AttentionImpl::kModular:
      break;
  }
  return modular_attention(dev, x, w, cfg);
}

}  // namespace et::core
