// Prompt-prefix trie for copy-on-write KV sharing (docs/serving.md
// "Paged KV and prefix sharing"). Requests whose prompts begin with the
// same token sequence — the shared-system-prompt workload of PagedAttention
// (Kwon et al.) and the radix-tree reuse of SGLang — can alias the KV
// blocks an earlier request already filled instead of recomputing storage
// for them.
//
// The trie is keyed on (prefix_group, token chunks): each edge holds one
// KV block's worth of prompt tokens (`block_tokens` per full node, fewer
// for the single partial leaf a node may carry). A prefix_group scopes
// matching to requests whose embed() closures agree — token ids alone do
// not determine KV content, the embedding does, so callers assign one
// group id per embedding identity and kNoPrefixGroup opts out entirely.
//
// Ownership: the trie owns NOTHING. A node is an advertisement that some
// resident block holds the KV rows of a known token chunk; block
// lifetime is the BlockAllocator's refcount, held only by per-slot block
// tables. When the last table reference drops and a block frees, the
// pool erases its node (erase_block), so the trie never pins memory and
// the drain invariant (kv_bytes_used == 0 with no live requests) is
// preserved.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

namespace et::core {

/// Index into a BlockAllocator's block array.
using BlockId = std::uint32_t;
inline constexpr BlockId kNoBlock = static_cast<BlockId>(-1);

/// DecodeParams::prefix_group value meaning "never share" (the default:
/// sharing is opt-in because it is only sound between requests whose
/// embed() closures are bit-identical functions).
inline constexpr std::uint64_t kNoPrefixGroup = 0;

class PrefixTrie {
 public:
  /// `block_tokens` is the KV block granularity: full nodes advertise
  /// exactly that many rows, the (at most one per parent) partial leaf
  /// advertises fewer. Throws std::invalid_argument on zero.
  explicit PrefixTrie(std::size_t block_tokens);

  struct Match {
    std::vector<BlockId> blocks;  ///< aliasable blocks, prefix order
    std::size_t tokens = 0;       ///< rows of KV the blocks cover
  };

  /// Longest registered prefix of `prompt` within `group`, capped at
  /// `max_tokens` rows. The final matched block may be covered only
  /// partially (a cap landing mid-block, or a partial-leaf whose chunk
  /// diverges after a few tokens) — the caller aliases the whole block
  /// and lets its first divergent append trigger the CoW split.
  [[nodiscard]] Match lookup(std::uint64_t group,
                             std::span<const std::int32_t> prompt,
                             std::size_t max_tokens) const;

  /// Advertise that `block` holds the KV rows of
  /// `prompt_prefix[last_chunk_start .. size)`, where the preceding full
  /// chunks must already be registered (blocks register in position
  /// order, so parents exist first; a missing parent skips the insert).
  /// A multiple-of-block_tokens prefix registers a full node, anything
  /// else the parent's single partial leaf. Idempotent and first-wins:
  /// an existing node (same chunk, or any partial leaf) is kept.
  void insert(std::uint64_t group, std::span<const std::int32_t> prompt_prefix,
              BlockId block);

  /// A writer appended into `block` at row offset `written_row`: every
  /// node advertising more than `written_row` rows of that block no
  /// longer describes its contents — erase it (and its subtree, which
  /// extended the now-stale prefix).
  void invalidate(BlockId block, std::size_t written_row);

  /// The block was freed: nothing may advertise it. Equivalent to
  /// invalidate(block, 0).
  void erase_block(BlockId block) { invalidate(block, 0); }

  /// Live node count (tests).
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t block_tokens() const noexcept {
    return block_tokens_;
  }

 private:
  static constexpr std::size_t kRoot = static_cast<std::size_t>(-1);

  struct Node {
    std::uint64_t group = kNoPrefixGroup;
    std::size_t parent = kRoot;
    std::vector<std::int32_t> tokens;  ///< this edge's chunk
    BlockId block = kNoBlock;
    bool partial = false;  ///< tokens.size() < block_tokens
  };

  /// Child of `parent` (within `group` when parent == kRoot) whose chunk
  /// equals `chunk`; nodes_.end() when absent.
  [[nodiscard]] std::map<std::size_t, Node>::const_iterator find_child(
      std::size_t parent, std::uint64_t group,
      std::span<const std::int32_t> chunk) const;
  [[nodiscard]] bool has_partial_child(std::size_t parent,
                                       std::uint64_t group) const;
  void erase_subtree(std::size_t id);

  std::size_t block_tokens_;
  std::map<std::size_t, Node> nodes_;  // id -> node; ids never reused
  std::size_t next_id_ = 0;
};

}  // namespace et::core
