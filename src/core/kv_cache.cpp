#include "core/kv_cache.hpp"

#include <cassert>
#include <stdexcept>

#include "core/attention_math.hpp"
#include "kernels/gemm.hpp"
#include "kernels/linear.hpp"

namespace et::core {

void KVCache::append(std::span<const float> k_row,
                     std::span<const float> v_row) {
  // Every check precedes the first write to either plane: a rejected
  // append must never leave K one row longer than V (or half-written).
  if (full()) {
    throw std::length_error("KVCache::append: cache is full (" +
                            std::to_string(capacity()) + " rows)");
  }
  if (k_row.size() != k_.cols() || v_row.size() != v_.cols()) {
    throw std::invalid_argument(
        "KVCache::append: row width mismatch (k " +
        std::to_string(k_row.size()) + ", v " + std::to_string(v_row.size()) +
        ", cache k " + std::to_string(k_.cols()) + ", cache v " +
        std::to_string(v_.cols()) + ")");
  }
  for (std::size_t c = 0; c < k_.cols(); ++c) k_(used_, c) = k_row[c];
  for (std::size_t c = 0; c < v_.cols(); ++c) v_(used_, c) = v_row[c];
  ++used_;
}
KVCachePool::KVCachePool(std::size_t num_slots, std::size_t num_layers,
                         std::size_t capacity, std::size_t d_model)
    : KVCachePool(num_slots, capacity, d_model,
                  std::vector<std::size_t>(num_layers, d_model)) {}

KVCachePool::KVCachePool(std::size_t num_slots, std::size_t capacity,
                         std::size_t k_width,
                         const std::vector<std::size_t>& v_widths) {
  slots_.resize(num_slots);
  free_.reserve(num_slots);
  for (std::size_t s = 0; s < num_slots; ++s) {
    slots_[s].caches.reserve(v_widths.size());
    for (const std::size_t vw : v_widths) {
      slots_[s].caches.emplace_back(capacity, k_width, vw);
    }
    free_.push_back(num_slots - 1 - s);  // pop order: slot 0 first
  }
}

std::size_t KVCachePool::acquire() {
  if (free_.empty()) {
    throw std::runtime_error("KVCachePool::acquire: no free slot");
  }
  const std::size_t slot = free_.back();
  free_.pop_back();
  slots_[slot].in_use = true;
  for (auto& cache : slots_[slot].caches) cache.reset();
  return slot;
}

void KVCachePool::release(std::size_t slot) {
  if (slot >= slots_.size() || !slots_[slot].in_use) {
    throw std::invalid_argument("KVCachePool::release: slot " +
                                std::to_string(slot) +
                                " is not an acquired slot");
  }
  slots_[slot].in_use = false;
  free_.push_back(slot);
}

tensor::MatrixF KVCache::k_prefix() const {
  tensor::MatrixF out(used_, k_.cols());
  for (std::size_t r = 0; r < used_; ++r) {
    for (std::size_t c = 0; c < k_.cols(); ++c) out(r, c) = k_(r, c);
  }
  return out;
}

tensor::MatrixF KVCache::v_prefix() const {
  tensor::MatrixF out(used_, v_.cols());
  for (std::size_t r = 0; r < used_; ++r) {
    for (std::size_t c = 0; c < v_.cols(); ++c) out(r, c) = v_(r, c);
  }
  return out;
}

tensor::MatrixF incremental_attention(ExecContext& ctx,
                                      const tensor::MatrixF& x_row,
                                      const AttentionWeights& w,
                                      const AttentionConfig& cfg,
                                      KVCache& cache) {
  cfg.validate();
  assert(x_row.rows() == 1 && x_row.cols() == cfg.d_model);

  kernels::LinearOptions opt;
  opt.precision = cfg.precision;

  // Project the new token's q/k (two skinny GEMMs — generation is
  // kernel-launch- and weight-load-bound, which these counters expose).
  const tensor::MatrixF q = kernels::linear(ctx, x_row, w.wq, opt,
                                            "gen_q_linear").y;
  const tensor::MatrixF k_new = kernels::linear(ctx, x_row, w.wk, opt,
                                                "gen_k_linear").y;

  // The V-side operand, in the layout the cache stores (docs/attention.md,
  // "Weight layouts in the decode path"):
  //   - pre-computed W_VO (§3.1): the cached row is m = x·W_VOᵀ, H·kept
  //     wide — the condensed operand of the incremental S·(X·W_VO). W_O
  //     is folded into those rows, so the step ends at the attention
  //     output (no gen_out_linear);
  //   - condensable row-pruned W_V (§4.3): the cached row is the
  //     condensed v (Σkept wide); attention writes the kept coordinates
  //     and W_O applies as usual;
  //   - anything else: a full-width dense v row.
  const PrecomputedVO* vo = nullptr;
  std::vector<std::uint32_t> v_kept;
  tensor::MatrixF v_new;
  if (w.has_precomputed()) {
    vo = &w.vo;
    v_new = kernels::gemm_nt(ctx, x_row, w.vo.weight, cfg.precision, nullptr,
                             "gen_vo_linear");
  } else if (w.v_condensable(cfg.num_heads)) {
    kernels::LinearOptions vopt = opt;
    vopt.scatter_row_pruned_output = false;
    auto res = kernels::linear(ctx, x_row, w.wv, vopt, "gen_v_linear");
    v_new = std::move(res.y);
    v_kept = std::move(res.nonzero_cols);
  } else {
    v_new = kernels::linear(ctx, x_row, w.wv, opt, "gen_v_linear").y;
  }
  tensor::MatrixF z = incremental_attention_step(
      ctx, q, k_new, v_new, vo, v_kept.empty() ? nullptr : &v_kept, cfg,
      cache);
  if (vo != nullptr) return z;  // W_O is folded into the cached rows
  return kernels::linear(ctx, z, w.wo, opt, "gen_out_linear").y;
}

tensor::MatrixF incremental_attention_step(
    ExecContext& ctx, const tensor::MatrixF& q, const tensor::MatrixF& k_new,
    const tensor::MatrixF& v_new, const PrecomputedVO* vo,
    const std::vector<std::uint32_t>* v_kept, const AttentionConfig& cfg,
    KVCache& cache) {
  gpusim::Device& dev = ctx.device();
  cache.append(k_new.row(0), v_new.row(0));

  const std::size_t ctx_len = cache.used();
  const std::size_t d = cfg.d_model;
  const std::size_t vw = cache.v_width();  // condensed V re-read every step
  const std::size_t sb = numeric::storage_bytes(cfg.precision);

  // One fused kernel: the single query row against the cache. The score
  // row (H × ctx_len entries across CTAs) stays in shared memory — a
  // 1-row OTF instance.
  {
    auto launch = dev.launch(
        {.name = "incremental_otf_attention",
         .ctas = cfg.num_heads,
         .shared_bytes_per_cta =
             cfg.d_k() * numeric::accumulator_bytes(cfg.precision) +
             ctx_len * numeric::accumulator_bytes(cfg.precision),
         .pattern = gpusim::AccessPattern::kTiled});
    launch.load_bytes(d * sb);                         // q
    launch.load_bytes(ctx_len * (d + vw) * sb);        // cached K and V planes
    launch.store_bytes(d * sb);                        // one output row
    const std::uint64_t flops = 2ull * ctx_len * (d + vw);  // q·K^T and s·V
    if (cfg.precision == numeric::Precision::kFp32) {
      launch.fp_ops(flops + 5ull * ctx_len * cfg.num_heads);
    } else {
      launch.tensor_ops(flops);
      launch.fp_ops(5ull * ctx_len * cfg.num_heads);
    }
  }

  tensor::MatrixF z(1, d);
  if (!dev.traffic_only()) {
    AttentionConfig step_cfg = cfg;
    step_cfg.seq_len = 1;
    // The query is the latest position: it may attend to the whole cache,
    // so no mask applies within this step.
    step_cfg.causal_mask = false;
    z = detail::attention_math(q, cache.k_prefix(), cache.v_prefix(), vo,
                               v_kept, step_cfg);
  }
  return z;
}

}  // namespace et::core
