// A CTA-level implementation of the on-the-fly attention operator,
// written against the gpusim execution engine so every global-memory
// access and shared-memory byte is *measured* rather than claimed.
//
// This exists to audit the analytic accounting in otf_attention(): tests
// compare the two kernels' traffic, shared-memory footprint and outputs.
// (The analytic path remains the production one — it is orders of
// magnitude faster on the host.)
#pragma once

#include "core/attention.hpp"

namespace et::core {

/// Same contract as otf_attention() for dense/pruned weights without
/// pre-computation or condensed V; precision must be kFp32 (the measured
/// kernel audits traffic, not rounding).
[[nodiscard]] tensor::MatrixF otf_attention_measured(
    gpusim::Device& dev, const tensor::MatrixF& x, const AttentionWeights& w,
    const AttentionConfig& cfg);

}  // namespace et::core
