// serving::MetricsRegistry — the observability spine of the request-level
// serving runtime (docs/serving.md).
//
// Three primitive families, all deterministic and allocation-stable:
//   - Counter: monotonically increasing uint64 (requests, tokens, faults);
//   - Gauge:   instantaneous double (queue depth, active slots, kv bytes);
//   - Histogram: fixed buckets chosen at registration — observations land
//     in the first bucket whose upper bound is >= the value, with an
//     implicit +inf overflow bucket. Fixed buckets keep the snapshot
//     stable run-to-run: the same workload always produces the same
//     counts in the same buckets.
//
// Two export surfaces share one source of truth:
//   - scalars(): every counter and gauge plus <hist>_count/_sum/_mean per
//     histogram, in registration order. This ordered name/value list IS
//     the field-name contract between `et_cli --serve --json` and
//     `bench/ablation_serving` rows — both iterate it, so their keys
//     cannot drift apart.
//   - json(): the full snapshot ({"counters": ..., "gauges": ...,
//     "histograms": {name: {"bounds": [...], "counts": [...], "count":
//     N, "sum": S, "mean": M}}}), stable field order (registration
//     order), machine-parseable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace et::serving {

class Counter {
 public:
  void inc(std::uint64_t by = 1) noexcept { value_ += by; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram. `bounds` are inclusive upper edges in strictly
/// increasing order; counts() has bounds.size() + 1 entries, the last
/// being the +inf overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
    return counts_;
  }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  /// sum/count, 0 when empty — the scalar summary exported per histogram.
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Upper bound of the bucket containing the q-quantile observation
  /// (q in [0, 1]): the smallest bound B such that at least ⌈q·count⌉
  /// observations are <= B. Returns 0 on an empty histogram and +inf when
  /// the quantile lands in the overflow bucket. Fixed buckets make this a
  /// conservative (never under-reporting) tail estimate — the p99 the
  /// overload rows in bench/ablation_serving report.
  [[nodiscard]] double quantile_bound(double q) const noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// One scalar snapshot field: the shared name/value unit of the JSON
/// contract between et_cli and bench/ablation_serving.
struct ScalarField {
  std::string name;
  double value = 0.0;
};

/// Named registry with stable (registration-order) iteration. References
/// returned by counter()/gauge()/histogram() stay valid for the registry's
/// lifetime (deque-like storage via unique ownership).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. Throws std::invalid_argument when the name is
  /// already registered as a different metric kind, or (for histograms)
  /// when `bounds` is empty or not strictly increasing.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Read-only lookup; nullptr when absent.
  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  /// Every counter and gauge (value as double) plus
  /// <name>_count/<name>_sum/<name>_mean per histogram, in registration
  /// order — the flat field list both JSON emitters iterate.
  [[nodiscard]] std::vector<ScalarField> scalars() const;

  /// Full snapshot as a JSON object, stable field order. `indent` spaces
  /// of leading indentation per line when > 0 (pretty), single line at 0.
  [[nodiscard]] std::string json(int indent = 2) const;

 private:
  struct NamedCounter { std::string name; Counter metric; };
  struct NamedGauge { std::string name; Gauge metric; };
  struct NamedHistogram { std::string name; Histogram metric; };

  // Vectors of unique_ptr-free values would invalidate references on
  // growth; store stable-address nodes instead.
  std::vector<std::unique_ptr<NamedCounter>> counters_;
  std::vector<std::unique_ptr<NamedGauge>> gauges_;
  std::vector<std::unique_ptr<NamedHistogram>> histograms_;
};

}  // namespace et::serving
