#include "serving/server.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace et::serving {

namespace {

/// Power-of-two tick buckets: latency budgets are tick counts, so the
/// interesting range is 1..a few hundred ticks regardless of model size.
std::vector<double> tick_bounds() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256};
}

/// Decode-rate buckets (tokens per modeled-device second) span the gap
/// between a heavyweight model on one slot and a slim model on a full
/// batch — log-spaced decades.
std::vector<double> rate_bounds() {
  return {1e2, 1e3, 1e4, 1e5, 1e6, 1e7};
}

}  // namespace

InferenceServer::InferenceServer(const nn::Model& model, ServerConfig cfg)
    : sched_(model, cfg.max_batch, cfg.kv), cfg_(cfg) {
  // Registration order fixes the snapshot's field order — the contract
  // et_cli --serve --json and bench/ablation_serving share.
  submitted_ = &metrics_.counter("requests_submitted");
  admitted_ = &metrics_.counter("requests_admitted");
  completed_ = &metrics_.counter("requests_completed");
  rejected_ = &metrics_.counter("requests_rejected");
  cancelled_ = &metrics_.counter("requests_cancelled");
  expired_ = &metrics_.counter("requests_expired");
  kernel_faults_ = &metrics_.counter("kernel_faults");
  preemptions_ = &metrics_.counter("preemptions");
  retries_ = &metrics_.counter("retries");
  shed_ = &metrics_.counter("shed");
  tokens_emitted_ = &metrics_.counter("tokens_emitted");
  ticks_ = &metrics_.counter("ticks");
  for (std::size_t r = 0; r < nn::kStopReasonCount; ++r) {
    stop_reason_[r] = &metrics_.counter(
        "stop_" + std::string(to_string(static_cast<nn::StopReason>(r))));
  }
  queue_depth_gauge_ = &metrics_.gauge("queue_depth");
  active_slots_gauge_ = &metrics_.gauge("active_slots");
  kv_bytes_gauge_ = &metrics_.gauge("kv_bytes");
  kv_bytes_used_gauge_ = &metrics_.gauge("kv_bytes_used");
  throughput_gauge_ = &metrics_.gauge("throughput_tokens_per_sec");
  health_gauge_ = &metrics_.gauge("health");
  queue_wait_ = &metrics_.histogram("queue_wait_ticks", tick_bounds());
  ttft_ = &metrics_.histogram("ttft_ticks", tick_bounds());
  e2e_ = &metrics_.histogram("e2e_ticks", tick_bounds());
  tokens_per_sec_ = &metrics_.histogram("tokens_per_sec", rate_bounds());
  // Paged-KV fields register LAST so older snapshots remain a prefix of
  // the scalar order above (the --json field-order contract).
  kv_bytes_used_peak_gauge_ = &metrics_.gauge("kv_bytes_used_peak");
  prefix_hits_gauge_ = &metrics_.gauge("prefix_hits");
  prefix_shared_tokens_gauge_ = &metrics_.gauge("prefix_shared_tokens");
  cow_splits_gauge_ = &metrics_.gauge("cow_splits");

  kv_bytes_gauge_->set(static_cast<double>(sched_.pool().memory_bytes()));
}

RequestHandle InferenceServer::submit(Request req) {
  if (req.max_new_tokens > 0 && (!req.embed || !req.select)) {
    throw std::invalid_argument(
        "InferenceServer::submit: embed and select are required when "
        "max_new_tokens > 0");
  }
  const RequestHandle h{records_.size()};
  Record rec;
  rec.submitted_tick = tick_;
  rec.queued_since_tick = tick_;
  rec.req = std::move(req);
  records_.push_back(std::move(rec));
  submitted_->inc();

  Record& r = records_.back();
  if (r.req.max_new_tokens == 0) {
    // Nothing to decode: the empty happy path completes without touching
    // the queue or a slot, mirroring the scheduler's own semantics.
    finish_unadmitted(h.id, nn::StopReason::kMaxTokens, tick_);
    completed_->inc();
    return h;
  }
  if (queue_depth() >= cfg_.queue_capacity) {
    // Backpressure: the bounded queue is the only buffer this runtime
    // owns; when it is full the honest answer is an immediate typed
    // rejection, not unbounded growth or silent blocking.
    r.reject_reason = RejectReason::kQueueFull;
    finish_unadmitted(h.id, nn::StopReason::kRejected, tick_);
    rejected_->inc();
    return h;
  }
  if (r.req.total_budget_ticks == 0) {
    // Deadline checked at admission: a zero end-to-end budget can never
    // produce a token, so it expires before it wastes queue space.
    finish_unadmitted(h.id, nn::StopReason::kDeadlineExceeded, tick_);
    expired_->inc();
    return h;
  }
  if (cfg_.enable_shedding && r.req.queue_budget_ticks != kNoBudget) {
    // Load shedding: estimate the queue wait from below, so a shed is
    // provably unmeetable given the current queue and slot state (a
    // future cancel() is the one thing the bound cannot foresee). The
    // request is admitted this very tick (wait 0) iff the eligible
    // backlog at or above its class fits the capacity the next tick
    // frees; otherwise later ticks admit at most max_batch each. If
    // even that optimistic estimate blows the queue budget, refusing
    // now is strictly better than letting the request occupy queue
    // space until it expires — the caller learns immediately and the
    // queue keeps its room for requests that can still make their
    // deadlines.
    //
    // "Eligible" backlog: entries already past a budget expire before
    // the next admission pass, and entries sitting out a retry backoff
    // cannot take a slot next tick — dropping both can only lower the
    // estimate, which keeps it a lower bound.
    std::size_t ahead = 0;
    for (std::size_t c = 0; c <= static_cast<std::size_t>(r.req.priority);
         ++c) {
      for (const std::uint64_t qid : queues_[c]) {
        const Record& o = records_[qid];
        const bool queue_out =
            o.req.queue_budget_ticks != kNoBudget &&
            tick_ - o.queued_since_tick > o.req.queue_budget_ticks;
        const bool total_out =
            o.req.total_budget_ticks != kNoBudget &&
            tick_ - o.submitted_tick >= o.req.total_budget_ticks;
        if (!queue_out && !total_out && o.earliest_admit_tick <= tick_) {
          ++ahead;
        }
      }
    }
    // Next-tick capacity: free slots, plus slots whose occupant's total
    // budget expires at the next tick, plus (with preemption on) every
    // active request this class strictly outranks — displaced or
    // finished at its preemption cap, either way its slot frees.
    std::size_t capacity = sched_.max_batch() - sched_.active();
    for (const std::uint64_t aid : active_) {
      const Record& o = records_[aid];
      const bool expiring =
          o.req.total_budget_ticks != kNoBudget &&
          tick_ - o.submitted_tick >= o.req.total_budget_ticks;
      const bool outranked =
          cfg_.enable_preemption &&
          static_cast<std::uint8_t>(o.req.priority) >
              static_cast<std::uint8_t>(r.req.priority);
      if (expiring || outranked) ++capacity;
    }
    const std::size_t est_wait =
        ahead < capacity ? 0
                         : 1 + (ahead - capacity) / sched_.max_batch();
    if (est_wait > r.req.queue_budget_ticks) {
      r.reject_reason = RejectReason::kShed;
      finish_unadmitted(h.id, nn::StopReason::kRejected, tick_);
      shed_->inc();
      return h;
    }
  }
  queues_[static_cast<std::size_t>(r.req.priority)].push_back(h.id);
  return h;
}

bool InferenceServer::cancel(RequestHandle h) {
  Record& r = record(h);
  if (r.state == RequestState::kFinished) return false;
  if (r.state == RequestState::kQueued ||
      r.state == RequestState::kPreempted) {
    // Both live in a class queue; a preempted request keeps the tokens
    // its earlier slot tenure emitted (finish_unadmitted moves them
    // into the result).
    auto& q = queues_[static_cast<std::size_t>(r.req.priority)];
    q.erase(std::find(q.begin(), q.end(), h.id));
    finish_unadmitted(h.id, nn::StopReason::kCancelled, tick_);
    cancelled_->inc();
    return true;
  }
  // Active: retire the slot now; tokens already emitted are kept (and
  // were already streamed after the tick that produced them).
  sched_.cancel(r.sched_id, nn::StopReason::kCancelled);
  finish_admitted(h.id, tick_, /*device_us=*/-1.0);
  cancelled_->inc();
  return true;
}

void InferenceServer::expire_queued(std::size_t t) {
  for (auto& q : queues_) {
    for (std::size_t i = 0; i < q.size();) {
      Record& r = records_[q[i]];
      // The queue budget bounds each queue STINT (a preempted or
      // retrying request starts a fresh stint when requeued); the total
      // budget always runs from submission.
      const std::size_t stint = t - r.queued_since_tick;
      const std::size_t waited = t - r.submitted_tick;
      const bool queue_out = r.req.queue_budget_ticks != kNoBudget &&
                             stint > r.req.queue_budget_ticks;
      const bool total_out = r.req.total_budget_ticks != kNoBudget &&
                             waited >= r.req.total_budget_ticks;
      if (queue_out || total_out) {
        const std::uint64_t id = q[i];
        q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
        finish_unadmitted(id, nn::StopReason::kDeadlineExceeded, t);
        expired_->inc();
      } else {
        ++i;
      }
    }
  }
}

void InferenceServer::expire_active(std::size_t t) {
  // Collect first: finishing erases from active_.
  std::vector<std::uint64_t> out;
  for (const std::uint64_t id : active_) {
    const Record& r = records_[id];
    if (r.req.total_budget_ticks != kNoBudget &&
        t - r.submitted_tick >= r.req.total_budget_ticks) {
      out.push_back(id);
    }
  }
  for (const std::uint64_t id : out) {
    sched_.cancel(records_[id].sched_id, nn::StopReason::kDeadlineExceeded);
    finish_admitted(id, t, /*device_us=*/-1.0);
    expired_->inc();
  }
}

void InferenceServer::admit_from_queues(core::ExecContext& ctx,
                                        std::size_t t) {
  std::size_t free = sched_.max_batch() - sched_.active();
  for (auto& q : queues_) {  // class order: interactive, normal, bulk
    for (std::size_t i = 0; free > 0 && i < q.size();) {
      if (records_[q[i]].earliest_admit_tick > t) {
        // Still serving its retry backoff — skip it without blocking the
        // rest of the class (it keeps its place for when it is ready).
        ++i;
        continue;
      }
      const std::uint64_t id = q[i];
      q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
      admit_one(ctx, id, t);
      --free;
    }
  }
  if (!cfg_.enable_preemption) return;
  // Preemption pass. Every slot is occupied by now (an eligible waiter
  // plus a free slot would have been matched above), so a request whose
  // class strictly outranks some active request's class may displace it:
  // the victim's slot is released and the victim requeued with its
  // tokens as a replay prefix (recompute-resume). Bulk, the lowest
  // class, never preempts. Displacement cascades deterministically — a
  // normal request preempted by an interactive one may in turn displace
  // an active bulk request this same tick.
  for (std::size_t c = 0; c + 1 < kPriorityClasses; ++c) {
    auto& q = queues_[c];
    for (std::size_t i = 0; i < q.size();) {
      if (records_[q[i]].earliest_admit_tick > t) {
        ++i;
        continue;
      }
      const std::size_t victim = pick_victim(static_cast<Priority>(c));
      if (victim == active_.size()) break;  // nothing below class c runs
      preempt(victim, t);
      const std::uint64_t id = q[i];
      q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
      admit_one(ctx, id, t);
    }
  }
}

void InferenceServer::admit_one(core::ExecContext& ctx, std::uint64_t id,
                                std::size_t t) {
  Record& r = records_[id];
  nn::GenerationRequest g;
  // The generation job is the shared DecodeParams slice of the serving
  // Request — COPIED, not moved: a later preemption or fault retry
  // re-submits the same job with a longer replay prefix, so the record
  // keeps its params until the request is terminal.
  static_cast<nn::DecodeParams&>(g) =
      static_cast<const nn::DecodeParams&>(r.req);
  // COPIED, not moved: until the new tenure's replay has caught up,
  // r.resume stays the authoritative transcript — the scheduler result
  // holds only the replayed-so-far prefix, and a displacement or
  // termination mid-replay must not shrink what was already delivered
  // (harvest clears it once the replay is complete).
  g.resume_tokens = r.resume;
  r.replay_len = r.resume.size();
  r.sched_id = sched_.submit(std::move(g));
  if (r.admitted_tick == kNoTick) r.admitted_tick = t;
  r.admit_device_us = ctx.device().total_time_us();
  r.state = RequestState::kActive;
  active_.push_back(id);
  admitted_->inc();  // counts every admission, re-admissions included
  queue_wait_->observe(static_cast<double>(t - r.queued_since_tick));
}

std::size_t InferenceServer::pick_victim(Priority cls) const noexcept {
  // Lowest priority strictly below `cls`; among equals the most recently
  // admitted (active_ is admission-ordered, so the LAST match) — the one
  // with the least sunk decode work to replay.
  std::size_t best = active_.size();
  auto best_pri = static_cast<std::uint8_t>(cls);
  for (std::size_t i = 0; i < active_.size(); ++i) {
    const auto p =
        static_cast<std::uint8_t>(records_[active_[i]].req.priority);
    if (p > best_pri || (p == best_pri && best != active_.size())) {
      best = i;
      best_pri = p;
    }
  }
  return best;
}

void InferenceServer::preempt(std::size_t victim, std::size_t t) {
  const std::uint64_t id = active_[victim];
  Record& r = records_[id];
  if (r.preemptions >= cfg_.preemption_limit) {
    // The cap converts endless churn into an honest terminal state: the
    // request keeps every token it emitted, typed kPreemptionLimit.
    sched_.cancel(r.sched_id, nn::StopReason::kPreemptionLimit);
    finish_admitted(id, t, /*device_us=*/-1.0);
    return;
  }
  ++r.preemptions;
  preemptions_->inc();
  // Retire the slot (KV released back to the pool); the emitted tokens
  // become the replay prefix that rebuilds the KV on re-admission. If
  // this tenure was itself still replaying, the scheduler result is
  // only the replayed-so-far prefix of r.resume — keep the longer
  // transcript, never shrink it below what was already streamed.
  sched_.cancel(r.sched_id, nn::StopReason::kCancelled);
  const auto& toks = sched_.result(r.sched_id).tokens;
  if (toks.size() > r.resume.size()) r.resume = toks;
  r.state = RequestState::kPreempted;
  r.queued_since_tick = t;  // fresh queue stint
  r.earliest_admit_tick = 0;
  std::erase(active_, id);
  // Head of its class: the victim outranks everything waiting behind it
  // (it had already been admitted once).
  queues_[static_cast<std::size_t>(r.req.priority)].push_front(id);
}

void InferenceServer::harvest(core::ExecContext& ctx, std::size_t t) {
  std::vector<std::uint64_t> done;
  for (const std::uint64_t id : active_) {
    Record& r = records_[id];
    const auto& toks = sched_.tokens_so_far(r.sched_id);
    // While a recompute-resume replay is catching up, toks is a prefix
    // of what was already streamed — the guard keeps every token's
    // delivery (and its count) exactly-once across tenures.
    if (toks.size() > r.streamed) {
      for (std::size_t j = r.streamed; j < toks.size(); ++j) {
        if (j == 0) {
          ttft_->observe(static_cast<double>(t + 1 - r.submitted_tick));
        }
        if (r.req.on_token) r.req.on_token(id, toks[j], j);
      }
      tokens_emitted_->inc(toks.size() - r.streamed);
      r.streamed = toks.size();
    }
    if (!r.resume.empty() && toks.size() >= r.resume.size()) {
      // Replay caught up: from here the scheduler transcript supersedes
      // the kept prefix, so the copy retained at admission can go.
      r.resume.clear();
    }
    if (sched_.finished(r.sched_id)) done.push_back(id);
  }
  for (const std::uint64_t id : done) {
    Record& r = records_[id];
    const auto& res = sched_.result(r.sched_id);
    if (res.stop_reason == nn::StopReason::kKernelFault) {
      kernel_faults_->inc();  // every fault event, retried or terminal
      if (r.retries < r.req.retry_budget) {
        // Fault retry with recompute: requeue at the head of the class
        // (the request has seniority — it was admitted once already),
        // gated by the backoff before it may take a slot again. Emitted
        // tokens become the replay prefix, so the resumed transcript is
        // bit-identical to a fault-free run.
        ++r.retries;
        retries_->inc();
        // A fault can strike while this tenure is still replaying, in
        // which case res.tokens is the shorter replayed-so-far prefix —
        // keep whichever transcript is longer.
        if (res.tokens.size() > r.resume.size()) r.resume = res.tokens;
        r.state = RequestState::kQueued;
        r.queued_since_tick = t + 1;
        r.earliest_admit_tick = t + 1 + r.req.retry_backoff_ticks;
        std::erase(active_, id);
        queues_[static_cast<std::size_t>(r.req.priority)].push_front(id);
        continue;
      }
    }
    finish_admitted(id, t + 1, ctx.device().total_time_us());
    completed_->inc();
  }
}

void InferenceServer::finish_unadmitted(std::uint64_t id,
                                        nn::StopReason reason,
                                        std::size_t t) {
  Record& r = records_[id];
  r.result.stop_reason = reason;
  // Tokens from earlier slot tenures survive a terminal-from-the-queue:
  // a request cancelled or expired while preempted keeps its output.
  r.result.tokens = std::move(r.resume);
  r.resume.clear();
  r.state = RequestState::kFinished;
  r.finished_tick = t;
  stop_reason_[static_cast<std::size_t>(reason)]->inc();
  r.req.embed = nullptr;
  r.req.select = nullptr;
  r.req.on_token = nullptr;
}

void InferenceServer::finish_admitted(std::uint64_t id, std::size_t t,
                                      double device_us) {
  Record& r = records_[id];
  r.result = sched_.result(r.sched_id);
  // Terminated mid-replay (preemption-limit, cancel, expiry): the
  // scheduler transcript is only the replayed-so-far prefix of what
  // earlier tenures already delivered — r.resume, still held from
  // admission, is then the longer, authoritative token stream.
  if (r.resume.size() > r.result.tokens.size()) {
    r.result.tokens = std::move(r.resume);
  }
  r.resume.clear();
  r.streamed = r.result.tokens.size();
  r.state = RequestState::kFinished;
  r.finished_tick = t;
  std::erase(active_, id);
  e2e_->observe(static_cast<double>(t - r.submitted_tick));
  stop_reason_[static_cast<std::size_t>(r.result.stop_reason)]->inc();
  // kernel_faults is counted per fault EVENT in harvest (a retried fault
  // still counts), not here at the terminal.
  //
  // Decode throughput counts only the tokens this final tenure newly
  // generated (result minus its replay prefix) — admit_device_us resets
  // on every re-admission, so charging replayed tokens from earlier
  // tenures against the last tenure's span would overstate the rate.
  const std::size_t fresh = r.result.tokens.size() > r.replay_len
                                ? r.result.tokens.size() - r.replay_len
                                : 0;
  if (device_us >= 0.0 && fresh > 0) {
    const double span = device_us - r.admit_device_us;
    if (span > 0.0) {
      tokens_per_sec_->observe(1e6 * static_cast<double>(fresh) / span);
    }
  }
  r.req.embed = nullptr;
  r.req.select = nullptr;
  r.req.on_token = nullptr;
}

void InferenceServer::refresh_gauges(const gpusim::Device& dev) {
  queue_depth_gauge_->set(static_cast<double>(queue_depth()));
  active_slots_gauge_->set(static_cast<double>(sched_.active()));
  // Block-granular residency: aliased prefix blocks count ONCE, which is
  // why a common-prefix storm's peak drops with sharing on (the
  // ablation_serving gate). The peak is tickwise — sampled here, after
  // the tick's retirements, so it is a stable function of the schedule.
  const double used = static_cast<double>(sched_.pool().used_bytes());
  kv_bytes_used_gauge_->set(used);
  if (used > kv_used_peak_) kv_used_peak_ = used;
  kv_bytes_used_peak_gauge_->set(kv_used_peak_);
  const core::PagedKVStats& kv = sched_.pool().stats();
  prefix_hits_gauge_->set(static_cast<double>(kv.prefix_hits));
  prefix_shared_tokens_gauge_->set(
      static_cast<double>(kv.prefix_shared_tokens));
  cow_splits_gauge_->set(static_cast<double>(kv.cow_splits));
  health_gauge_->set(static_cast<double>(static_cast<std::uint8_t>(health())));
  const double us = dev.total_time_us();
  throughput_gauge_->set(
      us > 0.0 ? 1e6 * static_cast<double>(tokens_emitted_->value()) / us
               : 0.0);
}

void InferenceServer::tick(core::ExecContext& ctx) {
  const std::size_t t = tick_;
  expire_queued(t);
  expire_active(t);
  admit_from_queues(ctx, t);
  ticks_->inc();
  if (sched_.active() > 0 || sched_.pending() > 0) {
    sched_.tick(ctx);
  }
  harvest(ctx, t);
  ++tick_;
  refresh_gauges(ctx.device());
}

void InferenceServer::drain(core::ExecContext& ctx) {
  while (!idle()) tick(ctx);
}

const nn::GenerationResult& InferenceServer::wait(RequestHandle h,
                                                  core::ExecContext& ctx) {
  while (record(h).state != RequestState::kFinished) tick(ctx);
  return record(h).result;
}

bool InferenceServer::finished(RequestHandle h) const {
  return record(h).state == RequestState::kFinished;
}

RequestStatus InferenceServer::status(RequestHandle h) const {
  const Record& r = record(h);
  RequestStatus s;
  s.state = r.state;
  s.reject_reason = r.reject_reason;
  s.priority = r.req.priority;
  s.submitted_tick = r.submitted_tick;
  s.admitted_tick = r.admitted_tick;
  s.finished_tick = r.finished_tick;
  s.tokens_emitted = r.state == RequestState::kFinished
                         ? r.result.tokens.size()
                         : r.streamed;
  s.preemptions = r.preemptions;
  s.retries = r.retries;
  return s;
}

const nn::GenerationResult& InferenceServer::result(RequestHandle h) const {
  const Record& r = record(h);
  if (r.state != RequestState::kFinished) {
    throw std::logic_error("InferenceServer::result: request " +
                           std::to_string(h.id) + " has not finished");
  }
  return r.result;
}

bool InferenceServer::idle() const noexcept {
  if (!active_.empty()) return false;
  for (const auto& q : queues_) {
    if (!q.empty()) return false;
  }
  return true;
}

std::size_t InferenceServer::queue_depth() const noexcept {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

ServerHealth InferenceServer::health() const noexcept {
  const std::size_t depth = queue_depth();
  if (depth >= cfg_.queue_capacity) return ServerHealth::kOverloaded;
  return depth > 0 ? ServerHealth::kDegraded : ServerHealth::kHealthy;
}

}  // namespace et::serving
