// serving::InferenceServer — the request-level serving runtime above
// nn::BatchedGenerationScheduler (docs/serving.md).
//
// The scheduler (PR 2/3) decodes whatever it is given; this layer adds
// the notion of a *request* arriving, waiting, being admitted, timing
// out, being cancelled — the continuous-batching runtime that keeps the
// fused decode tick's batch full under real traffic (the throughput
// story of serving-oriented transformer stacks, Li et al. 2021):
//
//   - a bounded admission queue with explicit backpressure: submit() on a
//     full queue finishes the request immediately with
//     StopReason::kRejected instead of growing without bound;
//   - priority classes (interactive > normal > bulk), FIFO within class;
//   - per-request deadlines — a queue-wait budget and an end-to-end
//     budget, both checked at admission and at the top of every tick;
//   - cancellation of queued or active requests (emitted tokens kept);
//   - streaming per-token callbacks, invoked on the drive thread in
//     deterministic (admission) order;
//   - a MetricsRegistry snapshot of the whole lifecycle.
//
// Time is LOGICAL: the clock is the server's own tick counter, so a
// fixed arrival script and thread count reproduce the same admissions,
// expiries, transcripts and metrics bit for bit, run after run — the
// repo's determinism spine extended to the serving layer. Budgets are
// therefore expressed in ticks (one tick ≈ one decoded token per active
// request); wall-clock serving would wrap this runtime and map budgets
// through its token cadence.
//
// Threading model: the drive loop (tick/drain/wait) is single-threaded —
// host parallelism lives inside the scheduler's ExecContext-partitioned
// kernels (docs/threading.md), which is what keeps the runtime
// TSan-clean and its output thread-count-independent. submit/cancel/poll
// are called from the same thread between ticks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string_view>
#include <vector>

#include "core/exec_context.hpp"
#include "nn/batched_generation.hpp"
#include "serving/metrics.hpp"

namespace et::serving {

/// Admission priority class. Lower value = served first; FIFO within a
/// class. A full queue rejects regardless of class (backpressure is
/// about total memory, not importance); a sustained stream of
/// interactive arrivals can starve bulk — by design, bulk work should
/// carry deadlines.
enum class Priority : std::uint8_t {
  kInteractive = 0,
  kNormal = 1,
  kBulk = 2,
};

inline constexpr std::size_t kPriorityClasses = 3;

[[nodiscard]] constexpr std::string_view to_string(Priority p) noexcept {
  switch (p) {
    case Priority::kInteractive: return "interactive";
    case Priority::kNormal: return "normal";
    case Priority::kBulk: return "bulk";
  }
  return "?";
}

/// "No budget": the request waits / runs for as long as it takes.
inline constexpr std::size_t kNoBudget = static_cast<std::size_t>(-1);

/// Sentinel tick for "never happened" in RequestStatus.
inline constexpr std::size_t kNoTick = static_cast<std::size_t>(-1);

/// Streaming sink: called once per emitted token, on the drive thread,
/// in deterministic order (admission order within a tick). `index` is
/// the token's position in the request's output (0-based).
using TokenCallback =
    std::function<void(std::uint64_t request_id, std::int32_t token,
                       std::size_t index)>;

/// One serving request: the shared nn::DecodeParams generation job
/// (first_token / max_new_tokens / embed / select / eos_token — the same
/// fields the scheduler's GenerationRequest carries, by construction)
/// plus the serving envelope below.
struct Request : nn::DecodeParams {
  Priority priority = Priority::kNormal;
  /// Max whole ticks the request may wait in the queue before admission;
  /// exceeded => StopReason::kDeadlineExceeded with no tokens.
  std::size_t queue_budget_ticks = kNoBudget;
  /// Max ticks from submission to completion; exceeded => the request
  /// finishes with kDeadlineExceeded, keeping the tokens emitted so far.
  std::size_t total_budget_ticks = kNoBudget;
  /// Optional streaming sink.
  TokenCallback on_token;
};

struct RequestHandle {
  std::uint64_t id = 0;
  friend bool operator==(RequestHandle, RequestHandle) = default;
};

enum class RequestState : std::uint8_t { kQueued, kActive, kFinished };

[[nodiscard]] constexpr std::string_view to_string(RequestState s) noexcept {
  switch (s) {
    case RequestState::kQueued: return "queued";
    case RequestState::kActive: return "active";
    case RequestState::kFinished: return "finished";
  }
  return "?";
}

/// Why submit() refused admission (kNone for everything admitted).
enum class RejectReason : std::uint8_t { kNone, kQueueFull };

[[nodiscard]] constexpr std::string_view to_string(RejectReason r) noexcept {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kQueueFull: return "queue_full";
  }
  return "?";
}

/// Poll view of one request's lifecycle.
struct RequestStatus {
  RequestState state = RequestState::kQueued;
  RejectReason reject_reason = RejectReason::kNone;
  Priority priority = Priority::kNormal;
  std::size_t submitted_tick = 0;
  std::size_t admitted_tick = kNoTick;  ///< kNoTick until admitted
  std::size_t finished_tick = kNoTick;  ///< kNoTick until finished
  std::size_t tokens_emitted = 0;
};

struct ServerConfig {
  std::size_t max_batch = 8;      ///< decode slots (scheduler batch)
  std::size_t queue_capacity = 64;  ///< bounded admission queue, all classes
};

class InferenceServer {
 public:
  /// Constructed from the validated nn::Model handle — weights, options
  /// and the per-slot KV capacity (model.max_context()) all arrive
  /// through the one construction point every decode entry path shares.
  /// The model is copied; the layer vector it borrows must outlive the
  /// server. Throws std::invalid_argument on anything the scheduler
  /// rejects (zero batch).
  InferenceServer(const nn::Model& model, ServerConfig cfg);

  /// Submit a request. Never blocks; on a full queue the request is
  /// REJECTED: it finishes immediately with StopReason::kRejected and
  /// status().reject_reason == kQueueFull. A total budget of zero ticks
  /// likewise finishes immediately (kDeadlineExceeded) — it could never
  /// complete. Throws std::invalid_argument when max_new_tokens > 0 but
  /// embed/select are empty.
  RequestHandle submit(Request req);

  /// Cancel a queued or active request: it finishes with
  /// StopReason::kCancelled, keeping tokens emitted so far. Returns
  /// false when the request already finished (cancel lost the race).
  bool cancel(RequestHandle h);

  /// One continuous-batching drive step:
  ///   1. expire queued/active requests whose budgets ran out,
  ///   2. backfill every free slot from the queues (priority order,
  ///      FIFO within class),
  ///   3. run one scheduler tick (fused batched decode),
  ///   4. deliver streaming tokens and retire finished requests,
  ///   5. refresh the gauges.
  void tick(core::ExecContext& ctx);

  /// Drive until every submitted request has finished.
  void drain(core::ExecContext& ctx);

  /// Drive until `h` finishes; returns its result.
  const nn::GenerationResult& wait(RequestHandle h, core::ExecContext& ctx);

  [[nodiscard]] bool finished(RequestHandle h) const;
  [[nodiscard]] RequestStatus status(RequestHandle h) const;
  /// Throws std::logic_error until the request finishes.
  [[nodiscard]] const nn::GenerationResult& result(RequestHandle h) const;

  [[nodiscard]] bool idle() const noexcept;
  [[nodiscard]] std::size_t queue_depth() const noexcept;
  [[nodiscard]] std::size_t active_slots() const noexcept {
    return sched_.active();
  }
  [[nodiscard]] std::size_t max_batch() const noexcept {
    return sched_.max_batch();
  }
  [[nodiscard]] const nn::Model& model() const noexcept {
    return sched_.model();
  }
  /// The logical clock: number of completed drive ticks.
  [[nodiscard]] std::size_t now() const noexcept { return tick_; }

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }

 private:
  struct Record {
    Request req;  // embed/select moved out at admission
    RequestState state = RequestState::kQueued;
    RejectReason reject_reason = RejectReason::kNone;
    std::size_t submitted_tick = 0;
    std::size_t admitted_tick = kNoTick;
    std::size_t finished_tick = kNoTick;
    std::size_t sched_id = 0;       // valid once admitted
    std::size_t streamed = 0;       // tokens already delivered to on_token
    double admit_device_us = 0.0;   // device clock at admission
    nn::GenerationResult result;    // final outcome (copied from scheduler)
  };

  void expire_queued(std::size_t t);
  void expire_active(std::size_t t);
  void admit_from_queues(core::ExecContext& ctx, std::size_t t);
  void harvest(core::ExecContext& ctx, std::size_t t);
  void refresh_gauges(const gpusim::Device& dev);

  /// Finish a never-admitted request (reject / cancel / queue expiry).
  void finish_unadmitted(std::uint64_t id, nn::StopReason reason,
                         std::size_t t);
  /// Finish an admitted request whose scheduler result is final.
  void finish_admitted(std::uint64_t id, std::size_t t, double device_us);

  Record& record(RequestHandle h) { return records_.at(h.id); }
  [[nodiscard]] const Record& record(RequestHandle h) const {
    return records_.at(h.id);
  }

  nn::BatchedGenerationScheduler sched_;
  ServerConfig cfg_;
  std::vector<Record> records_;                       // index == handle id
  std::deque<std::uint64_t> queues_[kPriorityClasses];  // FIFO per class
  std::vector<std::uint64_t> active_;  // admitted, unfinished; admission order
  std::size_t tick_ = 0;

  MetricsRegistry metrics_;
  // Named handles into metrics_, bound once in the constructor.
  Counter* submitted_ = nullptr;
  Counter* admitted_ = nullptr;
  Counter* completed_ = nullptr;
  Counter* rejected_ = nullptr;
  Counter* cancelled_ = nullptr;
  Counter* expired_ = nullptr;
  Counter* kernel_faults_ = nullptr;
  Counter* tokens_emitted_ = nullptr;
  Counter* ticks_ = nullptr;
  Counter* stop_reason_[nn::kStopReasonCount] = {};
  Gauge* queue_depth_gauge_ = nullptr;
  Gauge* active_slots_gauge_ = nullptr;
  Gauge* kv_bytes_gauge_ = nullptr;
  Gauge* throughput_gauge_ = nullptr;
  Histogram* queue_wait_ = nullptr;
  Histogram* ttft_ = nullptr;
  Histogram* e2e_ = nullptr;
  Histogram* tokens_per_sec_ = nullptr;
};

}  // namespace et::serving
