// serving::InferenceServer — the request-level serving runtime above
// nn::BatchedGenerationScheduler (docs/serving.md).
//
// The scheduler (PR 2/3) decodes whatever it is given; this layer adds
// the notion of a *request* arriving, waiting, being admitted, timing
// out, being cancelled — the continuous-batching runtime that keeps the
// fused decode tick's batch full under real traffic (the throughput
// story of serving-oriented transformer stacks, Li et al. 2021):
//
//   - a bounded admission queue with explicit backpressure: submit() on a
//     full queue finishes the request immediately with
//     StopReason::kRejected instead of growing without bound;
//   - priority classes (interactive > normal > bulk), FIFO within class;
//   - per-request deadlines — a queue-wait budget and an end-to-end
//     budget, both checked at admission and at the top of every tick;
//   - cancellation of queued or active requests (emitted tokens kept);
//   - streaming per-token callbacks, invoked on the drive thread in
//     deterministic (admission) order;
//   - a MetricsRegistry snapshot of the whole lifecycle.
//
// Overload and fault resilience (docs/robustness.md) — three mechanisms,
// one state machine:
//   - priority preemption with recompute-resume: when a strictly
//     higher-priority arrival finds every slot occupied, the
//     lowest-priority, most-recently-admitted active request is
//     preempted — its KV slot released, the request requeued at the HEAD
//     of its class carrying the tokens emitted so far; on re-admission
//     the scheduler replays that prefix through the fused tick to
//     rebuild the KV, so the resumed transcript is bit-identical to an
//     uninterrupted run. A per-request preemption cap turns the
//     (cap+1)th preemption into StopReason::kPreemptionLimit;
//   - fault retry with bounded backoff: a kernel-fault retirement with
//     retry budget left becomes a requeue-with-recompute after
//     retry_backoff_ticks instead of a terminal kKernelFault;
//   - load shedding: submit() estimates queue wait from per-class queue
//     depths and fast-rejects requests whose queue budget cannot be met
//     (RejectReason::kShed), and health() summarizes the server as
//     healthy / degraded / overloaded in the metrics snapshot.
//
// Time is LOGICAL: the clock is the server's own tick counter, so a
// fixed arrival script and thread count reproduce the same admissions,
// expiries, transcripts and metrics bit for bit, run after run — the
// repo's determinism spine extended to the serving layer. Budgets are
// therefore expressed in ticks (one tick ≈ one decoded token per active
// request); wall-clock serving would wrap this runtime and map budgets
// through its token cadence.
//
// Threading model: the drive loop (tick/drain/wait) is single-threaded —
// host parallelism lives inside the scheduler's ExecContext-partitioned
// kernels (docs/threading.md), which is what keeps the runtime
// TSan-clean and its output thread-count-independent. submit/cancel/poll
// are called from the same thread between ticks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string_view>
#include <vector>

#include "core/exec_context.hpp"
#include "nn/batched_generation.hpp"
#include "serving/metrics.hpp"

namespace et::serving {

/// Admission priority class. Lower value = served first; FIFO within a
/// class. A full queue rejects regardless of class (backpressure is
/// about total memory, not importance); a sustained stream of
/// interactive arrivals can starve bulk — by design, bulk work should
/// carry deadlines.
enum class Priority : std::uint8_t {
  kInteractive = 0,
  kNormal = 1,
  kBulk = 2,
};

inline constexpr std::size_t kPriorityClasses = 3;

[[nodiscard]] constexpr std::string_view to_string(Priority p) noexcept {
  switch (p) {
    case Priority::kInteractive: return "interactive";
    case Priority::kNormal: return "normal";
    case Priority::kBulk: return "bulk";
  }
  return "?";
}

/// "No budget": the request waits / runs for as long as it takes.
inline constexpr std::size_t kNoBudget = static_cast<std::size_t>(-1);

/// Sentinel tick for "never happened" in RequestStatus.
inline constexpr std::size_t kNoTick = static_cast<std::size_t>(-1);

/// Streaming sink: called once per emitted token, on the drive thread,
/// in deterministic order (admission order within a tick). `index` is
/// the token's position in the request's output (0-based).
using TokenCallback =
    std::function<void(std::uint64_t request_id, std::int32_t token,
                       std::size_t index)>;

/// One serving request: the shared nn::DecodeParams generation job
/// (first_token / max_new_tokens / embed / select / eos_token — the same
/// fields the scheduler's GenerationRequest carries, by construction)
/// plus the serving envelope below.
struct Request : nn::DecodeParams {
  Priority priority = Priority::kNormal;
  /// Max whole ticks the request may wait in the queue before admission;
  /// exceeded => StopReason::kDeadlineExceeded with no tokens. After a
  /// preemption or retry the budget applies to each queue STINT, not the
  /// cumulative wait — a preempted request is not punished for time it
  /// already spent decoding.
  std::size_t queue_budget_ticks = kNoBudget;
  /// Max ticks from submission to completion; exceeded => the request
  /// finishes with kDeadlineExceeded, keeping the tokens emitted so far.
  std::size_t total_budget_ticks = kNoBudget;
  /// Kernel-fault retries this request may spend. A fault retirement with
  /// budget left is requeued (recompute-resume) instead of finishing with
  /// StopReason::kKernelFault; only when the budget is exhausted does the
  /// fault become terminal.
  std::size_t retry_budget = 0;
  /// Ticks a faulted request sits out before it is eligible for
  /// re-admission (bounded backoff; 0 = next tick).
  std::size_t retry_backoff_ticks = 0;
  /// Optional streaming sink.
  TokenCallback on_token;
};

struct RequestHandle {
  std::uint64_t id = 0;
  friend bool operator==(RequestHandle, RequestHandle) = default;
};

/// kPreempted is "queued again with progress": the request sits in its
/// class queue carrying the tokens an earlier slot tenure emitted, and
/// will rebuild its KV by replaying them on re-admission. A retrying
/// (faulted) request goes back to plain kQueued — the distinction is
/// WHY the slot was lost, and kPreempted is the one callers may want to
/// observe (e.g. to stop feeding a repeatedly-displaced bulk job).
enum class RequestState : std::uint8_t {
  kQueued,
  kActive,
  kPreempted,
  kFinished,
};

[[nodiscard]] constexpr std::string_view to_string(RequestState s) noexcept {
  switch (s) {
    case RequestState::kQueued: return "queued";
    case RequestState::kActive: return "active";
    case RequestState::kPreempted: return "preempted";
    case RequestState::kFinished: return "finished";
  }
  return "?";
}

/// Why submit() refused admission (kNone for everything admitted).
/// kShed is the load-shedding fast path: the queue had room, but even a
/// lower-bound estimate of the queue wait (eligible backlog at or above
/// the request's class vs the capacity the next tick frees — free
/// slots, expiring occupants, preemptible victims — then max_batch
/// admissions per tick) already exceeded the request's queue budget, so
/// it was refused at the door instead of being left to expire after
/// waiting.
enum class RejectReason : std::uint8_t { kNone, kQueueFull, kShed };

[[nodiscard]] constexpr std::string_view to_string(RejectReason r) noexcept {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kShed: return "shed";
  }
  return "?";
}

/// Coarse load summary exported as the `health` gauge (0/1/2):
/// healthy = nothing waiting; degraded = a backlog exists but the queue
/// has room; overloaded = the queue is at (or beyond) capacity, so new
/// arrivals are being rejected or shed.
enum class ServerHealth : std::uint8_t { kHealthy, kDegraded, kOverloaded };

[[nodiscard]] constexpr std::string_view to_string(ServerHealth h) noexcept {
  switch (h) {
    case ServerHealth::kHealthy: return "healthy";
    case ServerHealth::kDegraded: return "degraded";
    case ServerHealth::kOverloaded: return "overloaded";
  }
  return "?";
}

/// Poll view of one request's lifecycle.
struct RequestStatus {
  RequestState state = RequestState::kQueued;
  RejectReason reject_reason = RejectReason::kNone;
  Priority priority = Priority::kNormal;
  std::size_t submitted_tick = 0;
  std::size_t admitted_tick = kNoTick;  ///< kNoTick until first admission
  std::size_t finished_tick = kNoTick;  ///< kNoTick until finished
  std::size_t tokens_emitted = 0;
  std::size_t preemptions = 0;  ///< times displaced by a higher class
  std::size_t retries = 0;      ///< kernel-fault retries consumed
};

struct ServerConfig {
  std::size_t max_batch = 8;      ///< decode slots (scheduler batch)
  std::size_t queue_capacity = 64;  ///< bounded admission queue, all classes
  /// Let strictly higher-priority arrivals displace active work when no
  /// slot is free (recompute-resume; docs/robustness.md).
  bool enable_preemption = true;
  /// Times one request may be preempted before the next displacement
  /// finishes it with StopReason::kPreemptionLimit instead (the bound
  /// that keeps churn from starving a bulk job forever).
  std::size_t preemption_limit = 2;
  /// Fast-reject requests whose queue budget the current backlog already
  /// makes unmeetable (RejectReason::kShed).
  bool enable_shedding = true;
  /// Paged KV pool shape (block size, physical block count, prefix
  /// sharing) handed straight to the scheduler — see core::PagedKVOptions
  /// and docs/serving.md "Paged KV and prefix sharing". Sharing changes
  /// kv_bytes_used only; transcripts and every other metric are
  /// bit-identical with it on or off.
  core::PagedKVOptions kv;
};

class InferenceServer {
 public:
  /// Constructed from the validated nn::Model handle — weights, options
  /// and the per-slot KV capacity (model.max_context()) all arrive
  /// through the one construction point every decode entry path shares.
  /// The model is copied; the layer vector it borrows must outlive the
  /// server. Throws std::invalid_argument on anything the scheduler
  /// rejects (zero batch).
  InferenceServer(const nn::Model& model, ServerConfig cfg);

  /// Submit a request. Never blocks; on a full queue the request is
  /// REJECTED: it finishes immediately with StopReason::kRejected and
  /// status().reject_reason == kQueueFull. A total budget of zero ticks
  /// likewise finishes immediately (kDeadlineExceeded) — it could never
  /// complete. With shedding enabled, a finite queue budget smaller than
  /// a lower-bound queue-wait estimate is refused up front with
  /// kRejected / RejectReason::kShed: wait 0 iff the eligible backlog
  /// at or above the request's class fits the capacity the next tick
  /// frees (free slots + expiring occupants + preemptible victims),
  /// else 1 + ⌈remainder / max_batch⌉-style ticks beyond that — so a
  /// shed request provably could not have met its budget given the
  /// current queue/slot state (a future cancel() excepted). Throws
  /// std::invalid_argument when max_new_tokens > 0 but embed/select are
  /// empty.
  RequestHandle submit(Request req);

  /// Cancel a queued or active request: it finishes with
  /// StopReason::kCancelled, keeping tokens emitted so far. Returns
  /// false when the request already finished (cancel lost the race).
  bool cancel(RequestHandle h);

  /// One continuous-batching drive step:
  ///   1. expire queued/active requests whose budgets ran out,
  ///   2. backfill every free slot from the queues (priority order,
  ///      FIFO within class),
  ///   3. run one scheduler tick (fused batched decode),
  ///   4. deliver streaming tokens and retire finished requests,
  ///   5. refresh the gauges.
  void tick(core::ExecContext& ctx);

  /// Drive until every submitted request has finished.
  void drain(core::ExecContext& ctx);

  /// Drive until `h` finishes; returns its result.
  const nn::GenerationResult& wait(RequestHandle h, core::ExecContext& ctx);

  [[nodiscard]] bool finished(RequestHandle h) const;
  [[nodiscard]] RequestStatus status(RequestHandle h) const;
  /// Throws std::logic_error until the request finishes.
  [[nodiscard]] const nn::GenerationResult& result(RequestHandle h) const;

  [[nodiscard]] bool idle() const noexcept;
  [[nodiscard]] std::size_t queue_depth() const noexcept;
  /// Coarse load state derived from the queue backlog (also exported as
  /// the `health` gauge each tick).
  [[nodiscard]] ServerHealth health() const noexcept;
  [[nodiscard]] std::size_t active_slots() const noexcept {
    return sched_.active();
  }
  [[nodiscard]] std::size_t max_batch() const noexcept {
    return sched_.max_batch();
  }
  [[nodiscard]] const nn::Model& model() const noexcept {
    return sched_.model();
  }
  /// The logical clock: number of completed drive ticks.
  [[nodiscard]] std::size_t now() const noexcept { return tick_; }

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }

 private:
  struct Record {
    Request req;  // embed/select kept until finish (re-admission needs them)
    RequestState state = RequestState::kQueued;
    RejectReason reject_reason = RejectReason::kNone;
    std::size_t submitted_tick = 0;
    std::size_t admitted_tick = kNoTick;  // first admission only
    std::size_t finished_tick = kNoTick;
    std::size_t sched_id = 0;       // valid once admitted (latest tenure)
    std::size_t streamed = 0;       // tokens already delivered to on_token
    std::size_t preemptions = 0;    // slot tenures lost to a higher class
    std::size_t retries = 0;        // kernel-fault retries consumed
    std::size_t queued_since_tick = 0;     // start of the current queue stint
    std::size_t earliest_admit_tick = 0;   // retry backoff gate
    std::size_t replay_len = 0;  // resume-prefix length at latest admission
    // Emitted tokens awaiting replay. Retained (not moved) across an
    // admission until the new tenure's replay catches up: while the
    // scheduler is still replaying, its result holds only a prefix of
    // this transcript, and any mid-replay displacement or termination
    // must keep the longer of the two.
    std::vector<std::int32_t> resume;
    double admit_device_us = 0.0;   // device clock at latest admission
    nn::GenerationResult result;    // final outcome (copied from scheduler)
  };

  void expire_queued(std::size_t t);
  void expire_active(std::size_t t);
  void admit_from_queues(core::ExecContext& ctx, std::size_t t);
  void harvest(core::ExecContext& ctx, std::size_t t);
  void refresh_gauges(const gpusim::Device& dev);

  /// Move a queued request into a scheduler slot (DecodeParams are
  /// COPIED — a later preemption/retry re-submits them; Record::resume
  /// rides along as the scheduler's replay prefix).
  void admit_one(core::ExecContext& ctx, std::uint64_t id, std::size_t t);
  /// Index into active_ of the preemption victim for an arrival of class
  /// `cls`: lowest priority strictly below `cls`, most recently admitted
  /// among those. active_.size() when nobody is preemptible.
  [[nodiscard]] std::size_t pick_victim(Priority cls) const noexcept;
  /// Displace active_[victim]: release its slot and requeue it at the
  /// head of its class with its tokens as the replay prefix — unless its
  /// preemption cap is already spent, in which case it finishes with
  /// StopReason::kPreemptionLimit. Either way one slot is free after.
  void preempt(std::size_t victim, std::size_t t);

  /// Finish a request that is not in a slot (reject / shed / cancel /
  /// queue expiry). Tokens from earlier tenures (Record::resume) become
  /// the result's token stream, so a request cancelled while preempted
  /// keeps everything it emitted.
  void finish_unadmitted(std::uint64_t id, nn::StopReason reason,
                         std::size_t t);
  /// Finish an admitted request whose scheduler result is final.
  void finish_admitted(std::uint64_t id, std::size_t t, double device_us);

  Record& record(RequestHandle h) { return records_.at(h.id); }
  [[nodiscard]] const Record& record(RequestHandle h) const {
    return records_.at(h.id);
  }

  nn::BatchedGenerationScheduler sched_;
  ServerConfig cfg_;
  std::vector<Record> records_;                       // index == handle id
  std::deque<std::uint64_t> queues_[kPriorityClasses];  // FIFO per class
  std::vector<std::uint64_t> active_;  // admitted, unfinished; admission order
  std::size_t tick_ = 0;

  MetricsRegistry metrics_;
  // Named handles into metrics_, bound once in the constructor.
  Counter* submitted_ = nullptr;
  Counter* admitted_ = nullptr;
  Counter* completed_ = nullptr;
  Counter* rejected_ = nullptr;
  Counter* cancelled_ = nullptr;
  Counter* expired_ = nullptr;
  Counter* kernel_faults_ = nullptr;
  Counter* preemptions_ = nullptr;
  Counter* retries_ = nullptr;
  Counter* shed_ = nullptr;
  Counter* tokens_emitted_ = nullptr;
  Counter* ticks_ = nullptr;
  Counter* stop_reason_[nn::kStopReasonCount] = {};
  Gauge* queue_depth_gauge_ = nullptr;
  Gauge* active_slots_gauge_ = nullptr;
  Gauge* kv_bytes_gauge_ = nullptr;
  Gauge* kv_bytes_used_gauge_ = nullptr;
  Gauge* throughput_gauge_ = nullptr;
  Gauge* health_gauge_ = nullptr;
  Histogram* queue_wait_ = nullptr;
  Histogram* ttft_ = nullptr;
  Histogram* e2e_ = nullptr;
  Histogram* tokens_per_sec_ = nullptr;
  // Paged-KV observability (registered after everything above so older
  // scalar snapshots stay a prefix of newer ones). kv_bytes_used_peak is
  // the gauge the shared-prefix ablation row gates on: block-granular
  // residency at the tickwise high-water mark, where aliased prefixes
  // count once.
  Gauge* kv_bytes_used_peak_gauge_ = nullptr;
  Gauge* prefix_hits_gauge_ = nullptr;
  Gauge* prefix_shared_tokens_gauge_ = nullptr;
  Gauge* cow_splits_gauge_ = nullptr;
  double kv_used_peak_ = 0.0;
};

}  // namespace et::serving
