#include "serving/registry.hpp"

#include <algorithm>
#include <bit>
#include <fstream>
#include <stdexcept>

#include "nn/serialize.hpp"
#include "tensor/matrix.hpp"

namespace et::serving {

namespace {

/// splitmix64 — the same cheap deterministic mixer the differential
/// harness uses; here it drives the server-side decode head.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

float unit_float(std::uint64_t h) {
  // [-1, 1) from the top 24 bits — small enough to keep activations tame.
  return static_cast<float>((h >> 40) % 2000000ull) / 1000000.0f - 1.0f;
}

constexpr std::uint32_t kMagicEtw1 = 0x31575445;  // "ETW1"
constexpr std::uint32_t kMagicEtw2 = 0x32575445;  // "ETW2"

}  // namespace

LoadedModel::LoadedModel(std::string name, std::uint64_t version,
                         std::vector<nn::EncoderWeights> layers,
                         nn::EncoderOptions opt, std::size_t max_context,
                         std::int32_t vocab,
                         std::optional<nn::WeightFormat> format)
    : name_(std::move(name)),
      version_(version),
      layers_(std::move(layers)),
      opt_(opt),
      model_(&layers_, opt_, max_context, format),
      vocab_(vocab) {
  if (vocab_ <= 0) {
    throw std::invalid_argument("LoadedModel: vocab must be positive");
  }
}

nn::EmbedFn LoadedModel::embed_fn() const {
  const std::size_t d_model = model_.d_model();
  return [d_model](std::int32_t token, std::size_t position) {
    tensor::MatrixF row(1, d_model);
    const std::uint64_t base =
        splitmix64((static_cast<std::uint64_t>(token) << 32) ^
                   static_cast<std::uint64_t>(position));
    for (std::size_t c = 0; c < d_model; ++c) {
      row(0, c) = unit_float(splitmix64(base + c));
    }
    return row;
  };
}

nn::SelectFn LoadedModel::select_fn() const {
  const std::int32_t vocab = vocab_;
  return [vocab](const tensor::MatrixF& hidden) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (float v : hidden.flat()) {
      h = splitmix64(h ^ std::bit_cast<std::uint32_t>(v));
    }
    return static_cast<std::int32_t>(h % static_cast<std::uint64_t>(vocab));
  };
}

void ModelRegistry::load_file(const std::string& name, std::uint64_t version,
                              const std::string& path, nn::EncoderOptions opt,
                              std::size_t max_context, std::int32_t vocab) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    throw std::runtime_error("ModelRegistry: cannot open checkpoint: " + path);
  }
  // Peek the magic so the unchecksummed-ETW1 gate fires with a targeted
  // error before the legacy loader's stderr warning.
  std::uint32_t magic = 0;
  f.read(reinterpret_cast<char*>(&magic), sizeof magic);
  if (!f) {
    throw std::runtime_error("ModelRegistry: truncated checkpoint: " + path);
  }
  if (magic == kMagicEtw1 && !allow_unchecksummed_) {
    throw std::runtime_error(
        "ModelRegistry: '" + path +
        "' is a legacy unchecksummed ETW1 checkpoint; re-save it in the "
        "checksummed ETW2 format or pass --allow-unchecksummed");
  }
  if (magic != kMagicEtw1 && magic != kMagicEtw2) {
    throw std::runtime_error("ModelRegistry: '" + path +
                             "' is not an ETW checkpoint (bad magic)");
  }
  f.seekg(0);
  auto layers = nn::load_encoder_stack(f);  // CRC-validates every section
  add(name, version, std::move(layers), opt, max_context, vocab);
}

void ModelRegistry::add(const std::string& name, std::uint64_t version,
                        std::vector<nn::EncoderWeights> layers,
                        nn::EncoderOptions opt, std::size_t max_context,
                        std::int32_t vocab,
                        std::optional<nn::WeightFormat> format) {
  auto model = std::make_shared<LoadedModel>(name, version, std::move(layers),
                                             opt, max_context, vocab, format);
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    if (e.name == name && e.version == version) {
      throw std::invalid_argument("ModelRegistry: '" + name + "' v" +
                                  std::to_string(version) +
                                  " is already loaded");
    }
  }
  entries_.push_back({name, version, std::move(model)});
}

bool ModelRegistry::unload(const std::string& name, std::uint64_t version) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&](const Entry& e) {
                                 return e.name == name && e.version == version;
                               });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

ModelPin ModelRegistry::pin_locked(const std::shared_ptr<LoadedModel>& m) {
  ++pins_;
  // A fresh control block whose deleter releases both the pin count and
  // the inner reference — every copy of the returned pin is the SAME pin;
  // the count drops when the last copy dies.
  std::shared_ptr<LoadedModel> inner = m;
  return ModelPin(inner.get(), [this, inner](const LoadedModel*) mutable {
    inner.reset();
    const std::lock_guard<std::mutex> lock(mu_);
    --pins_;
  });
}

ModelPin ModelRegistry::acquire(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const Entry* best = nullptr;
  for (const auto& e : entries_) {
    if (e.name == name && (best == nullptr || e.version > best->version)) {
      best = &e;
    }
  }
  return best == nullptr ? nullptr : pin_locked(best->model);
}

ModelPin ModelRegistry::acquire(const std::string& name,
                                std::uint64_t version) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    if (e.name == name && e.version == version) return pin_locked(e.model);
  }
  return nullptr;
}

std::vector<std::uint64_t> ModelRegistry::versions(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> out;
  for (const auto& e : entries_) {
    if (e.name == name) out.push_back(e.version);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t ModelRegistry::models_loaded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::size_t ModelRegistry::active_pins() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return pins_;
}

std::uint64_t ModelRegistry::swaps() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return swaps_;
}

void ModelRegistry::note_swap() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++swaps_;
}

void ModelRegistry::bind_metrics(MetricsRegistry& reg) {
  const std::lock_guard<std::mutex> lock(mu_);
  models_loaded_gauge_ = &reg.gauge("models_loaded");
  swaps_gauge_ = &reg.gauge("swaps");
  active_pins_gauge_ = &reg.gauge("active_pins");
}

void ModelRegistry::refresh_gauges() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (models_loaded_gauge_ != nullptr) {
    models_loaded_gauge_->set(static_cast<double>(entries_.size()));
  }
  if (swaps_gauge_ != nullptr) {
    swaps_gauge_->set(static_cast<double>(swaps_));
  }
  if (active_pins_gauge_ != nullptr) {
    active_pins_gauge_->set(static_cast<double>(pins_));
  }
}

}  // namespace et::serving
