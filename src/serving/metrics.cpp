#include "serving/metrics.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace et::serving {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: at least one bucket bound");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument(
          "Histogram: bounds must be strictly increasing");
    }
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) noexcept {
  std::size_t b = bounds_.size();  // overflow bucket
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      b = i;
      break;
    }
  }
  ++counts_[b];
  ++count_;
  sum_ += v;
}

double Histogram::quantile_bound(double q) const noexcept {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    cum += counts_[i];
    if (static_cast<double>(cum) >= target) return bounds_[i];
  }
  return std::numeric_limits<double>::infinity();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  for (auto& c : counters_) {
    if (c->name == name) return c->metric;
  }
  if (find_gauge(name) != nullptr || find_histogram(name) != nullptr) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already registered as another kind");
  }
  counters_.push_back(std::make_unique<NamedCounter>(NamedCounter{name, {}}));
  return counters_.back()->metric;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  for (auto& g : gauges_) {
    if (g->name == name) return g->metric;
  }
  if (find_counter(name) != nullptr || find_histogram(name) != nullptr) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already registered as another kind");
  }
  gauges_.push_back(std::make_unique<NamedGauge>(NamedGauge{name, {}}));
  return gauges_.back()->metric;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  for (auto& h : histograms_) {
    if (h->name == name) return h->metric;
  }
  if (find_counter(name) != nullptr || find_gauge(name) != nullptr) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already registered as another kind");
  }
  histograms_.push_back(std::make_unique<NamedHistogram>(
      NamedHistogram{name, Histogram(std::move(bounds))}));
  return histograms_.back()->metric;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  for (const auto& c : counters_) {
    if (c->name == name) return &c->metric;
  }
  return nullptr;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  for (const auto& g : gauges_) {
    if (g->name == name) return &g->metric;
  }
  return nullptr;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  for (const auto& h : histograms_) {
    if (h->name == name) return &h->metric;
  }
  return nullptr;
}

std::vector<ScalarField> MetricsRegistry::scalars() const {
  std::vector<ScalarField> out;
  out.reserve(counters_.size() + gauges_.size() + 3 * histograms_.size());
  for (const auto& c : counters_) {
    out.push_back({c->name, static_cast<double>(c->metric.value())});
  }
  for (const auto& g : gauges_) {
    out.push_back({g->name, g->metric.value()});
  }
  for (const auto& h : histograms_) {
    out.push_back({h->name + "_count",
                   static_cast<double>(h->metric.count())});
    out.push_back({h->name + "_sum", h->metric.sum()});
    out.push_back({h->name + "_mean", h->metric.mean()});
  }
  return out;
}

namespace {

/// Trim floats to a stable short form: integers print without a decimal
/// point so counters stay counters in the JSON, everything else gets the
/// shortest digits that round-trip. std::to_chars, not snprintf — the
/// output must be valid JSON under ANY process locale (a "," decimal
/// separator from %g would corrupt the document), and to_chars is
/// locale-independent by specification. Non-finite values have no JSON
/// spelling; emit null rather than a bare token parsers choke on.
std::string fmt_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    const auto r = std::to_chars(buf, buf + sizeof buf,
                                 static_cast<long long>(v));
    return std::string(buf, r.ptr);
  }
  const auto r = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, r.ptr);
}

/// JSON string literal: escapes quotes, backslashes and (as \u00XX)
/// control characters, so any metric name — including ones built from
/// tenant or model names — yields a parseable document.
std::string quoted(const std::string& s) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out = "\"";
  for (char ch : s) {
    const auto u = static_cast<unsigned char>(ch);
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (u < 0x20) {
      out += "\\u00";
      out += kHex[u >> 4];
      out += kHex[u & 0xF];
    } else {
      out += ch;
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string MetricsRegistry::json(int indent) const {
  const std::string nl = indent > 0 ? "\n" : "";
  const std::string pad = indent > 0 ? std::string(indent, ' ') : "";
  const std::string pad2 = pad + pad;
  const std::string pad3 = pad2 + pad;
  std::string out = "{" + nl;

  out += pad + "\"counters\": {" + nl;
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    out += pad2 + quoted(counters_[i]->name) + ": " +
           fmt_number(static_cast<double>(counters_[i]->metric.value()));
    out += (i + 1 < counters_.size() ? "," : "") + nl;
  }
  out += pad + "}," + nl;

  out += pad + "\"gauges\": {" + nl;
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    out += pad2 + quoted(gauges_[i]->name) + ": " +
           fmt_number(gauges_[i]->metric.value());
    out += (i + 1 < gauges_.size() ? "," : "") + nl;
  }
  out += pad + "}," + nl;

  out += pad + "\"histograms\": {" + nl;
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    const Histogram& h = histograms_[i]->metric;
    out += pad2 + quoted(histograms_[i]->name) + ": {" + nl;
    out += pad3 + "\"bounds\": [";
    for (std::size_t b = 0; b < h.bounds().size(); ++b) {
      out += fmt_number(h.bounds()[b]);
      if (b + 1 < h.bounds().size()) out += ", ";
    }
    out += "]," + nl;
    out += pad3 + "\"counts\": [";
    for (std::size_t b = 0; b < h.counts().size(); ++b) {
      out += fmt_number(static_cast<double>(h.counts()[b]));
      if (b + 1 < h.counts().size()) out += ", ";
    }
    out += "]," + nl;
    out += pad3 + "\"count\": " + fmt_number(static_cast<double>(h.count())) +
           "," + nl;
    out += pad3 + "\"sum\": " + fmt_number(h.sum()) + "," + nl;
    out += pad3 + "\"mean\": " + fmt_number(h.mean()) + nl;
    out += pad2 + "}";
    out += (i + 1 < histograms_.size() ? "," : "") + nl;
  }
  out += pad + "}" + nl;

  out += "}";
  return out;
}

}  // namespace et::serving
