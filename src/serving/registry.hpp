// serving::ModelRegistry — named, versioned model instances behind the
// network front-end (docs/api.md "Registry lifecycle").
//
// The registry owns what the rest of the serving stack only borrows: each
// LoadedModel bundles the layer-weight vector (loaded from a checksummed
// ETW2 checkpoint, or handed over in memory), the validated nn::Model
// handle built over it, and the server-side decode head (deterministic
// embed/select closures — the hidden state flows through the model
// weights, so two versions with different weights produce different
// transcripts for the same prompt).
//
// Lifetime is pin-based: acquire() returns a ModelPin (a shared_ptr) and
// every copy of that pin keeps the instance alive. The network server
// holds one pin per serving engine; a hot swap points new submissions at
// the new version's engine while the old engine drains in place, and the
// old LoadedModel is destroyed exactly when its last pin drops — after
// the last in-flight request retires — never mid-request. unload() only
// removes the registry's own reference; it cannot pull weights out from
// under a pinned engine.
//
// Integrity: load_file() goes through nn::load_encoder_stack, so every
// section CRC is validated before a version becomes servable. Legacy
// unchecksummed ETW1 checkpoints are rejected unless the registry was
// built with allow_unchecksummed (the `--allow-unchecksummed` escape
// hatch in et_cli) — a bit flip in a served model must be a load error,
// not a silently different transcript.
//
// Observability: bind_metrics() registers the registry gauges
// (models_loaded / swaps / active_pins) on a caller-provided
// MetricsRegistry — registered last by the callers that already have
// metrics, so existing scalar snapshots stay a prefix.
//
// Thread safety: every public method locks the registry mutex; pins may
// be released from any thread. The registry must outlive every pin it
// handed out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "nn/generation.hpp"
#include "nn/model.hpp"
#include "serving/metrics.hpp"

namespace et::serving {

/// One servable model instance: owned weights + the validated handle +
/// the server-side decode head.
class LoadedModel {
 public:
  /// `format` is the nn::WeightFormat descriptor forwarded to the
  /// nn::Model handle (nullopt derives it from the weights; kInt8
  /// quantizes every decode GEMM operand at load time — the network
  /// server's quantized serving path).
  LoadedModel(std::string name, std::uint64_t version,
              std::vector<nn::EncoderWeights> layers, nn::EncoderOptions opt,
              std::size_t max_context, std::int32_t vocab,
              std::optional<nn::WeightFormat> format = std::nullopt);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }
  [[nodiscard]] const nn::Model& model() const noexcept { return model_; }
  [[nodiscard]] std::int32_t vocab() const noexcept { return vocab_; }

  /// Deterministic server-side embedding: a pure hash of (token,
  /// position) expanded to a 1 × d_model row. Identical across versions —
  /// version sensitivity comes from the weights the hidden state flows
  /// through, not the input encoding.
  [[nodiscard]] nn::EmbedFn embed_fn() const;
  /// Deterministic greedy head: hashes the exact float bits of the
  /// top-layer hidden state down to a token in [0, vocab). Bit-sensitive
  /// by construction, so transcripts distinguish model versions.
  [[nodiscard]] nn::SelectFn select_fn() const;

 private:
  std::string name_;
  std::uint64_t version_ = 0;
  std::vector<nn::EncoderWeights> layers_;  // owned; model_ borrows it
  nn::EncoderOptions opt_;
  nn::Model model_;
  std::int32_t vocab_ = 0;
};

/// A pin: shared ownership of one LoadedModel plus registry pin
/// accounting. Copying a pin does not change the pin count — one
/// acquire() is one pin until every copy is gone.
using ModelPin = std::shared_ptr<const LoadedModel>;

class ModelRegistry {
 public:
  /// `allow_unchecksummed` gates loading legacy ETW1 checkpoints (no
  /// per-section CRCs) through load_file.
  explicit ModelRegistry(bool allow_unchecksummed = false)
      : allow_unchecksummed_(allow_unchecksummed) {}
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Load a checkpoint from disk as (name, version). The stream must be a
  /// checksummed ETW2 stack (every section CRC-validated during the load);
  /// a legacy ETW1 stack is rejected with an error naming the gate unless
  /// the registry allows unchecksummed loads. Throws std::runtime_error on
  /// IO/integrity failures and std::invalid_argument on a duplicate
  /// (name, version) or a config the nn::Model validation rejects.
  void load_file(const std::string& name, std::uint64_t version,
                 const std::string& path, nn::EncoderOptions opt,
                 std::size_t max_context, std::int32_t vocab = 257);

  /// Register an in-memory layer stack as (name, version) — the path the
  /// CLI demo and tests use; weights are moved into the registry.
  void add(const std::string& name, std::uint64_t version,
           std::vector<nn::EncoderWeights> layers, nn::EncoderOptions opt,
           std::size_t max_context, std::int32_t vocab = 257,
           std::optional<nn::WeightFormat> format = std::nullopt);

  /// Drop the registry's reference to (name, version). The instance is
  /// destroyed now if unpinned, else when its last pin drops. Returns
  /// false when the version is not loaded.
  bool unload(const std::string& name, std::uint64_t version);

  /// Pin the newest loaded version of `name` (nullptr when absent).
  [[nodiscard]] ModelPin acquire(const std::string& name);
  /// Pin a specific version (nullptr when absent).
  [[nodiscard]] ModelPin acquire(const std::string& name,
                                 std::uint64_t version);

  /// Loaded versions of `name`, ascending.
  [[nodiscard]] std::vector<std::uint64_t> versions(
      const std::string& name) const;
  [[nodiscard]] std::size_t models_loaded() const;
  /// Pins handed out by acquire() and not yet fully released.
  [[nodiscard]] std::size_t active_pins() const;
  /// Swap count — bumped by note_swap(), the hook the serving engine
  /// calls when it repoints a model name at a new version.
  [[nodiscard]] std::uint64_t swaps() const;
  void note_swap();

  /// Register the registry gauges (`models_loaded`, `swaps`,
  /// `active_pins`) on `reg` and remember them; refresh_gauges() updates
  /// all three. Call after the owner's own metrics so existing snapshots
  /// stay a prefix.
  void bind_metrics(MetricsRegistry& reg);
  void refresh_gauges();

 private:
  struct Entry {
    std::string name;
    std::uint64_t version = 0;
    std::shared_ptr<LoadedModel> model;
  };

  [[nodiscard]] ModelPin pin_locked(const std::shared_ptr<LoadedModel>& m);

  bool allow_unchecksummed_ = false;
  mutable std::mutex mu_;
  std::vector<Entry> entries_;  // insertion order; lookups scan
  std::size_t pins_ = 0;        // live acquire() pins
  std::uint64_t swaps_ = 0;
  Gauge* models_loaded_gauge_ = nullptr;
  Gauge* swaps_gauge_ = nullptr;
  Gauge* active_pins_gauge_ = nullptr;
};

}  // namespace et::serving
