#include "data/synthetic_text.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>

namespace et::data {

SyntheticCorpus::SyntheticCorpus(TextCorpusConfig cfg) : cfg_(cfg) {
  std::mt19937_64 rng(cfg_.seed);

  // Zipf token weights.
  std::vector<double> weights(cfg_.vocab_size);
  for (std::size_t i = 0; i < cfg_.vocab_size; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1),
                                cfg_.zipf_exponent);
  }
  std::discrete_distribution<std::int32_t> zipf(weights.begin(),
                                                weights.end());

  // Random successor table: token t is followed by successor_[t] with
  // probability `determinism`.
  successor_.resize(cfg_.vocab_size);
  std::iota(successor_.begin(), successor_.end(), 0);
  std::shuffle(successor_.begin(), successor_.end(), rng);

  std::uniform_real_distribution<double> coin(0.0, 1.0);
  const auto gen_sequence = [&]() {
    LMExample ex;
    ex.tokens.resize(cfg_.seq_len);
    ex.targets.resize(cfg_.seq_len);
    std::int32_t tok = zipf(rng);
    for (std::size_t i = 0; i < cfg_.seq_len; ++i) {
      ex.tokens[i] = tok;
      const std::int32_t next =
          coin(rng) < cfg_.determinism ? successor_[tok] : zipf(rng);
      ex.targets[i] = next;
      tok = next;
    }
    return ex;
  };

  train_.reserve(cfg_.num_train_sequences);
  for (std::size_t i = 0; i < cfg_.num_train_sequences; ++i) {
    train_.push_back(gen_sequence());
  }
  valid_.reserve(cfg_.num_valid_sequences);
  for (std::size_t i = 0; i < cfg_.num_valid_sequences; ++i) {
    valid_.push_back(gen_sequence());
  }
}

}  // namespace et::data
