// Evaluation metrics following the GLUE conventions the paper reports
// (§5.1): accuracy (MNLI, SST-2, QNLI, WNLI), F1 (QQP, MRPC), Spearman
// correlation (STS-B).
#pragma once

#include <cstdint>
#include <span>

namespace et::data {

/// Fraction of matching predictions, in [0, 1].
[[nodiscard]] double accuracy(std::span<const std::int32_t> predictions,
                              std::span<const std::int32_t> labels);

/// Binary F1 with `positive` as the positive class.
[[nodiscard]] double f1_score(std::span<const std::int32_t> predictions,
                              std::span<const std::int32_t> labels,
                              std::int32_t positive = 1);

/// Spearman rank correlation (average ranks for ties), in [-1, 1].
[[nodiscard]] double spearman(std::span<const float> a,
                              std::span<const float> b);

/// Perplexity from a sum of per-token negative log-likelihoods:
/// exp(total_nll / token_count). The customary WikiText-2 LM metric.
[[nodiscard]] double perplexity(double total_nll, std::size_t token_count);

}  // namespace et::data
