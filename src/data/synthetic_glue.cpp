#include "data/synthetic_glue.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <random>

namespace et::data {

const char* to_string(GlueTask task) {
  switch (task) {
    case GlueTask::kMNLI: return "MNLI";
    case GlueTask::kQQP: return "QQP";
    case GlueTask::kQNLI: return "QNLI";
    case GlueTask::kSST2: return "SST-2";
    case GlueTask::kSTSB: return "STS-B";
    case GlueTask::kMRPC: return "MRPC";
    case GlueTask::kWNLI: return "WNLI";
  }
  return "?";
}

GlueTaskSpec glue_task_spec(GlueTask task) {
  GlueTaskSpec s;
  s.task = task;
  s.name = to_string(task);
  switch (task) {
    case GlueTask::kMNLI:
      s.metric = GlueMetric::kAccuracy;
      s.num_classes = 3;
      s.train_size = 192;
      s.test_size = 96;
      s.signal_strength = 0.50;
      s.label_noise = 0.15;
      break;
    case GlueTask::kQQP:
      s.metric = GlueMetric::kF1;
      s.num_classes = 2;
      s.train_size = 192;
      s.test_size = 96;
      s.signal_strength = 0.55;
      s.label_noise = 0.09;
      break;
    case GlueTask::kQNLI:
      s.metric = GlueMetric::kAccuracy;
      s.num_classes = 2;
      s.train_size = 160;
      s.test_size = 96;
      s.signal_strength = 0.50;
      s.label_noise = 0.09;
      break;
    case GlueTask::kSST2:
      s.metric = GlueMetric::kAccuracy;
      s.num_classes = 2;
      s.train_size = 160;
      s.test_size = 96;
      s.signal_strength = 0.60;
      s.label_noise = 0.07;
      break;
    case GlueTask::kSTSB:
      s.metric = GlueMetric::kSpearman;
      s.num_classes = 1;
      s.train_size = 160;
      s.test_size = 96;
      s.signal_strength = 0.50;
      s.label_noise = 0.45;
      break;
    case GlueTask::kMRPC:
      s.metric = GlueMetric::kF1;
      s.num_classes = 2;
      s.train_size = 128;
      s.test_size = 80;
      s.signal_strength = 0.50;
      s.label_noise = 0.11;
      break;
    case GlueTask::kWNLI:
      s.metric = GlueMetric::kAccuracy;
      s.num_classes = 2;
      s.train_size = 96;
      s.test_size = 96;
      s.signal_strength = 0.0;      // nothing to learn
      s.majority_fraction = 0.563;  // Table 1's universal 56.3
      break;
  }
  return s;
}

GlueDataset::GlueDataset(GlueTask task, GlueDatasetConfig cfg)
    : spec_(glue_task_spec(task)), cfg_(cfg) {
  spec_.train_size = static_cast<std::size_t>(
      std::max(1.0, static_cast<double>(spec_.train_size) * cfg_.size_scale));
  spec_.test_size = static_cast<std::size_t>(
      std::max(1.0, static_cast<double>(spec_.test_size) * cfg_.size_scale));

  std::mt19937_64 rng(cfg_.seed + static_cast<std::uint64_t>(task) * 1000);
  std::uniform_int_distribution<std::int32_t> any_token(
      0, static_cast<std::int32_t>(cfg_.vocab_size) - 1);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  // Each class owns a disjoint marker-token set at the top of the vocab.
  const std::size_t markers_per_class = 8;
  const auto marker = [&](std::size_t cls, std::size_t i) {
    return static_cast<std::int32_t>(cfg_.vocab_size - 1 -
                                     cls * markers_per_class - i);
  };
  std::uniform_int_distribution<std::size_t> which_marker(
      0, markers_per_class - 1);

  const auto gen = [&](std::vector<GlueExample>& out, std::size_t n) {
    out.reserve(n);
    // WNLI labels: exact majority proportion, shuffled so per-example SGD
    // sees no ordering bias.
    std::vector<std::int32_t> wnli_labels(n, 1);
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(spec_.majority_fraction *
                                      static_cast<double>(n) + 0.5);
         ++i) {
      if (i < n) wnli_labels[i] = 0;
    }
    std::shuffle(wnli_labels.begin(), wnli_labels.end(), rng);
    for (std::size_t e = 0; e < n; ++e) {
      GlueExample ex;
      ex.tokens.resize(cfg_.seq_len);
      if (spec_.num_classes == 1) {
        // Regression: target in [0, 5]; the marker fraction encodes it,
        // and the *observed* target carries Gaussian noise so a perfect
        // model cannot reach Spearman 1.
        const float target = static_cast<float>(coin(rng) * 5.0);
        const double frac = spec_.signal_strength *
                            static_cast<double>(target) / 5.0;
        for (auto& t : ex.tokens) {
          t = coin(rng) < frac ? marker(0, which_marker(rng))
                               : any_token(rng);
        }
        std::normal_distribution<float> tnoise(
            0.0f, static_cast<float>(spec_.label_noise));
        ex.target = std::clamp(target + tnoise(rng), 0.0f, 5.0f);
      } else if (spec_.signal_strength <= 0.0) {
        // WNLI analogue: the input carries no label information (every
        // example is the same sentence pattern) and labels appear in
        // exactly majority_fraction proportion, so the best any model —
        // pruned at any ratio — can do is predict the majority class and
        // score majority_fraction, reproducing Table 1's universal 56.3.
        std::mt19937_64 pattern_rng(cfg_.seed * 131);
        for (auto& t : ex.tokens) t = any_token(pattern_rng);
        ex.label = wnli_labels[e];
      } else {
        std::uniform_int_distribution<std::int32_t> any_class(
            0, static_cast<std::int32_t>(spec_.num_classes) - 1);
        ex.label = any_class(rng);
        for (auto& t : ex.tokens) {
          t = coin(rng) < spec_.signal_strength
                  ? marker(static_cast<std::size_t>(ex.label),
                           which_marker(rng))
                  : any_token(rng);
        }
        // Flip a fraction of labels to another class: the task's quality
        // ceiling becomes ~(1 - label_noise).
        if (coin(rng) < spec_.label_noise) {
          ex.label = (ex.label + 1 + any_class(rng)) %
                     static_cast<std::int32_t>(spec_.num_classes);
        }
      }
      out.push_back(std::move(ex));
    }
  };
  gen(train_, spec_.train_size);
  gen(test_, spec_.test_size);
}

}  // namespace et::data
