// Synthetic GLUE substitute (§5.1): seven sequence tasks whose *structure*
// mirrors the real suite —
//
//   task     kind              metric     notes
//   MNLI     3-way cls         accuracy   largest, moderate signal
//   QQP      binary cls        F1         strong signal, easy
//   QNLI     binary cls        accuracy   moderate
//   SST-2    binary cls        accuracy   strong signal
//   STS-B    regression [0,5]  Spearman   signal-fraction encodes target
//   MRPC     binary cls        F1         small, moderate
//   WNLI     binary cls        accuracy   NO learnable signal; labels are
//                                         56.3% majority, so every model —
//                                         pruned at any ratio — lands on
//                                         56.3, exactly as in Table 1.
//
// Classification examples embed `signal_strength`-fraction class-specific
// marker tokens in a noise stream; harder tasks use weaker signals, which
// gives each task its own accuracy ceiling and its own sensitivity to
// pruning — the structure Table 1 exercises.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace et::data {

enum class GlueTask { kMNLI, kQQP, kQNLI, kSST2, kSTSB, kMRPC, kWNLI };

inline constexpr GlueTask kAllGlueTasks[] = {
    GlueTask::kMNLI, GlueTask::kQQP,  GlueTask::kQNLI, GlueTask::kSST2,
    GlueTask::kSTSB, GlueTask::kMRPC, GlueTask::kWNLI};

enum class GlueMetric { kAccuracy, kF1, kSpearman };

struct GlueExample {
  std::vector<std::int32_t> tokens;
  std::int32_t label = 0;  ///< classification tasks
  float target = 0.0f;     ///< regression tasks (STS-B)
};

struct GlueTaskSpec {
  std::string name;
  GlueTask task;
  GlueMetric metric = GlueMetric::kAccuracy;
  std::size_t num_classes = 2;  ///< 1 = regression
  std::size_t train_size = 96;
  std::size_t test_size = 48;
  double signal_strength = 0.5;  ///< 0 = pure noise (WNLI)
  double majority_fraction = 0.5;
  /// Fraction of flipped labels (classification) or the std-dev of target
  /// noise (regression). Sets each task's quality ceiling below 100, so
  /// the Table 1 "retention" structure is meaningful.
  double label_noise = 0.0;
};

[[nodiscard]] GlueTaskSpec glue_task_spec(GlueTask task);
[[nodiscard]] const char* to_string(GlueTask task);

struct GlueDatasetConfig {
  std::size_t vocab_size = 256;
  std::size_t seq_len = 32;
  std::uint64_t seed = 11;
  /// Scale train/test sizes by this factor (benches shrink for speed).
  double size_scale = 1.0;
};

class GlueDataset {
 public:
  GlueDataset(GlueTask task, GlueDatasetConfig cfg);

  [[nodiscard]] const GlueTaskSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const std::vector<GlueExample>& train() const noexcept {
    return train_;
  }
  [[nodiscard]] const std::vector<GlueExample>& test() const noexcept {
    return test_;
  }

 private:
  GlueTaskSpec spec_;
  GlueDatasetConfig cfg_;
  std::vector<GlueExample> train_;
  std::vector<GlueExample> test_;
};

}  // namespace et::data
