// Synthetic WikiText-2 substitute: a Zipf-weighted order-1 Markov corpus.
//
// The paper's Transformer/WikiText-2 experiments (Fig. 14) need a
// next-token prediction task with a tunable accuracy ceiling: each token
// deterministically implies its successor with probability `determinism`
// (otherwise the successor is drawn Zipf-at-random), so a model that
// learns the transition table perfectly approaches `determinism` +
// chance-mass accuracy, and pruning-induced capacity loss shows up as a
// graceful accuracy decline — the property Fig. 14(a) depends on.
#pragma once

#include <cstdint>
#include <vector>

namespace et::data {

struct TextCorpusConfig {
  std::size_t vocab_size = 256;
  std::size_t num_train_sequences = 96;
  std::size_t num_valid_sequences = 24;
  std::size_t seq_len = 32;
  double determinism = 0.85;
  double zipf_exponent = 1.1;
  std::uint64_t seed = 7;
};

struct LMExample {
  std::vector<std::int32_t> tokens;   ///< inputs, length seq_len
  std::vector<std::int32_t> targets;  ///< next tokens, length seq_len
};

class SyntheticCorpus {
 public:
  explicit SyntheticCorpus(TextCorpusConfig cfg);

  [[nodiscard]] const std::vector<LMExample>& train() const noexcept {
    return train_;
  }
  [[nodiscard]] const std::vector<LMExample>& valid() const noexcept {
    return valid_;
  }
  [[nodiscard]] const TextCorpusConfig& config() const noexcept {
    return cfg_;
  }
  /// The deterministic successor of each token (the learnable structure).
  [[nodiscard]] const std::vector<std::int32_t>& successor_table()
      const noexcept {
    return successor_;
  }

 private:
  TextCorpusConfig cfg_;
  std::vector<std::int32_t> successor_;
  std::vector<LMExample> train_;
  std::vector<LMExample> valid_;
};

}  // namespace et::data
