#include "data/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <vector>

namespace et::data {

double accuracy(std::span<const std::int32_t> predictions,
                std::span<const std::int32_t> labels) {
  assert(predictions.size() == labels.size());
  if (predictions.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    correct += (predictions[i] == labels[i]);
  }
  return static_cast<double>(correct) /
         static_cast<double>(predictions.size());
}

double f1_score(std::span<const std::int32_t> predictions,
                std::span<const std::int32_t> labels, std::int32_t positive) {
  assert(predictions.size() == labels.size());
  std::size_t tp = 0, fp = 0, fn = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const bool pred_pos = predictions[i] == positive;
    const bool label_pos = labels[i] == positive;
    tp += (pred_pos && label_pos);
    fp += (pred_pos && !label_pos);
    fn += (!pred_pos && label_pos);
  }
  const double denom = 2.0 * static_cast<double>(tp) +
                       static_cast<double>(fp) + static_cast<double>(fn);
  return denom == 0.0 ? 0.0 : 2.0 * static_cast<double>(tp) / denom;
}

namespace {
/// Ranks with ties averaged.
std::vector<double> ranks(std::span<const float> v) {
  std::vector<std::size_t> idx(v.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> r(v.size());
  std::size_t i = 0;
  while (i < idx.size()) {
    std::size_t j = i;
    while (j + 1 < idx.size() && v[idx[j + 1]] == v[idx[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[idx[k]] = avg;
    i = j + 1;
  }
  return r;
}
}  // namespace

double spearman(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  const auto ra = ranks(a);
  const auto rb = ranks(b);
  const double n = static_cast<double>(a.size());
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += ra[i];
    mb += rb[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = ra[i] - ma;
    const double db = rb[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  const double denom = std::sqrt(va * vb);
  return denom == 0.0 ? 0.0 : cov / denom;
}

double perplexity(double total_nll, std::size_t token_count) {
  if (token_count == 0) return 0.0;
  return std::exp(total_nll / static_cast<double>(token_count));
}

}  // namespace et::data
